//! Structural validation and exclusive-access utilities.
//!
//! These methods require `&mut self` — i.e. provable quiescence — and are
//! meant for tests, debugging and snapshotting. In a quiescent tree
//! every operation has completed, so no reachable edge may still carry a
//! flag or tag; validation checks that along with the BST ordering and
//! external-tree shape the proof of §3.3 relies on.

use super::NmTreeMap;
use crate::key::Key;
use crate::node::{self, Node};
use nmbst_reclaim::Reclaim;

/// Shape summary returned by a successful
/// [`check_invariants`](NmTreeMap::check_invariants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// Number of user keys (finite-key leaves).
    pub user_keys: usize,
    /// Number of internal (routing) nodes, sentinels included.
    pub internal_nodes: usize,
    /// Number of leaf nodes, sentinels included.
    pub leaf_nodes: usize,
    /// Longest root-to-leaf path, in edges.
    pub max_depth: usize,
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Validates every structural invariant of the quiescent tree:
    ///
    /// 1. the sentinel scaffolding of Figure 3 is intact,
    /// 2. no reachable edge carries a flag or tag,
    /// 3. every node is either a leaf (two null children) or internal
    ///    (two non-null children),
    /// 4. BST order: left-subtree keys `<` node key `≤` right-subtree
    ///    keys,
    /// 5. exactly the finite-key leaves carry values, and every internal
    ///    node has exactly two children (external-tree shape).
    ///
    /// Returns the tree's shape on success, a description of the first
    /// violation otherwise.
    pub fn check_invariants(&mut self) -> Result<TreeShape, String> {
        // SAFETY: exclusive access throughout.
        unsafe {
            let root = self.root;
            if (*root).key != Key::Inf2 {
                return Err("root key is not ∞₂".into());
            }
            let root_right = (*root).right.load_mut();
            if root_right.marked() {
                return Err("edge R→leaf(∞₂) is marked".into());
            }
            let r_leaf = root_right.ptr();
            if r_leaf.is_null() || !(*r_leaf).is_leaf() || (*r_leaf).key != Key::Inf2 {
                return Err("right child of R is not the ∞₂ sentinel leaf".into());
            }
            let root_left = (*root).left.load_mut();
            if root_left.marked() {
                return Err("edge R→S is marked".into());
            }
            let s = root_left.ptr();
            if s.is_null() || (*s).key != Key::Inf1 {
                return Err("left child of R is not the sentinel S (∞₁)".into());
            }

            let mut shape = TreeShape {
                user_keys: 0,
                internal_nodes: 0,
                leaf_nodes: 0,
                max_depth: 0,
            };
            // Iterative DFS with ordering bounds: (node, lower, upper,
            // depth); bounds are exclusive below / inclusive above in the
            // external-BST sense (left < key ≤ right).
            type Bound<'a, K> = Option<&'a Key<K>>;
            type Frame<'a, K, V> = (*mut Node<K, V>, Bound<'a, K>, Bound<'a, K>, usize);
            let mut stack: Vec<Frame<'_, K, V>> = vec![(root, None, None, 0)];
            while let Some((n, low, high, depth)) = stack.pop() {
                shape.max_depth = shape.max_depth.max(depth);
                let key = &(*n).key;
                if let Some(low) = low {
                    if key < low {
                        return Err(format!("ordering violated: a key sits left of its lower bound at depth {depth}"));
                    }
                }
                if let Some(high) = high {
                    if key >= high {
                        return Err(format!("ordering violated: a key sits at/above its upper bound at depth {depth}"));
                    }
                }
                let left = (*n).left.load_mut();
                let right = (*n).right.load_mut();
                if left.marked() || right.marked() {
                    return Err(format!(
                        "marked edge reachable in quiescent tree at depth {depth}"
                    ));
                }
                match (left.ptr().is_null(), right.ptr().is_null()) {
                    (true, true) => {
                        shape.leaf_nodes += 1;
                        match key {
                            Key::Fin(_) => {
                                shape.user_keys += 1;
                                if (*n).value.is_none() {
                                    return Err("user leaf without a value".into());
                                }
                            }
                            _ => {
                                if (*n).value.is_some() {
                                    return Err("sentinel leaf carries a value".into());
                                }
                            }
                        }
                    }
                    (false, false) => {
                        shape.internal_nodes += 1;
                        if (*n).value.is_some() {
                            return Err("internal node carries a value".into());
                        }
                        // Left strictly below `key`; right at/above it.
                        stack.push((left.ptr(), low, Some(&(*n).key), depth + 1));
                        stack.push((right.ptr(), Some(&(*n).key), high, depth + 1));
                    }
                    _ => {
                        return Err(format!(
                            "node with exactly one child at depth {depth} (tree must be external)"
                        ));
                    }
                }
            }
            // External tree: #internal = #leaves - 1.
            if shape.internal_nodes + 1 != shape.leaf_nodes {
                return Err(format!(
                    "external-shape violation: {} internal vs {} leaves",
                    shape.internal_nodes, shape.leaf_nodes
                ));
            }
            Ok(shape)
        }
    }

    /// Exact number of keys. Exclusive access; `O(n)`.
    pub fn len(&mut self) -> usize {
        let mut n = 0;
        self.for_each(|_, _| n += 1);
        n
    }

    /// All keys in ascending order (exact snapshot; exclusive access).
    pub fn keys(&mut self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        self.for_each(|k, _| out.push(k.clone()));
        out
    }

    /// Removes every key, resetting the tree to the empty sentinel shape
    /// and freeing all user nodes immediately.
    pub fn clear(&mut self) {
        // SAFETY: exclusive access; rebuild from scratch.
        unsafe {
            node::free_subtree(self.root);
        }
        self.root = node::sentinel_tree();
    }
}

#[cfg(test)]
mod tests {
    use crate::NmTreeMap;
    use nmbst_reclaim::Ebr;

    type Map = NmTreeMap<i64, i64, Ebr>;

    #[test]
    fn empty_tree_is_valid() {
        let mut map = Map::new();
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 0);
        assert_eq!(shape.leaf_nodes, 3);
        assert_eq!(shape.internal_nodes, 2);
        assert_eq!(shape.max_depth, 2);
    }

    #[test]
    fn shape_after_inserts() {
        let mut map = Map::new();
        for k in 0..100 {
            map.insert(k, k);
        }
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 100);
        // External tree: each insert adds one internal + one leaf.
        assert_eq!(shape.leaf_nodes, 103);
        assert_eq!(shape.internal_nodes, 102);
    }

    #[test]
    fn shape_after_churn() {
        let mut map = Map::new();
        for k in 0..200 {
            map.insert(k, k);
        }
        for k in (0..200).step_by(2) {
            assert!(map.remove(&k));
        }
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 100);
        assert_eq!(map.len(), 100);
        assert_eq!(
            map.keys(),
            (0..200).filter(|k| k % 2 == 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut map = Map::new();
        for k in 0..50 {
            map.insert(k, k);
        }
        map.clear();
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 0);
        assert!(map.is_empty());
        // Usable after clear.
        assert!(map.insert(1, 1));
        assert!(map.contains(&1));
    }

    #[test]
    fn sorted_inserts_make_degenerate_but_valid_tree() {
        let mut map = Map::new();
        for k in 0..1000 {
            map.insert(k, k);
        }
        let shape = map.check_invariants().unwrap();
        assert!(shape.max_depth >= 1000, "expected a deep spine");
    }
}
