//! Standard collection traits and bulk operations.

use super::NmTreeMap;
use crate::set::NmTreeSet;
use nmbst_reclaim::Reclaim;

impl<K, V, R> FromIterator<(K, V)> for NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Builds a map from pairs. Duplicate keys keep the **first**
    /// occurrence (inserts of existing keys are rejected, per the
    /// algorithm's dictionary semantics).
    ///
    /// Routes through the O(n) balanced bulk-load (see
    /// [`from_sorted_iter`](NmTreeMap::from_sorted_iter)): already-sorted
    /// input skips the sort, everything else pays one `sort` and then
    /// builds privately with zero CAS.
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = NmTreeMap::new();
        map.bulk_extend(iter.into_iter().collect());
        map
    }
}

impl<K, V, R> Extend<(K, V)> for NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Bulk insert. On an empty tree this is the O(n) balanced build
    /// with a single publish; on a populated tree it becomes a sorted
    /// [`insert_batch`](crate::MapHandle::insert_batch) so each descent
    /// anchors at the previous one. Duplicate keys are rejected as in
    /// [`insert`](NmTreeMap::insert).
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        self.bulk_extend(iter.into_iter().collect());
    }
}

impl<K, R> FromIterator<K> for NmTreeSet<K, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    /// Builds a set from keys in any order. Duplicate keys collapse to
    /// one (first occurrence, matching [`insert`](NmTreeSet::insert)
    /// semantics), and the result is the O(n) balanced bulk-load.
    ///
    /// Routes through the same `bulk_extend` as the map's
    /// `FromIterator` — *not* through
    /// [`from_sorted_iter`](NmTreeSet::from_sorted_iter) — so that a
    /// future sorted-only fast path in `from_sorted_iter` can never
    /// change what arbitrary-order collection means.
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut set = NmTreeSet::new();
        set.map_mut()
            .bulk_extend(iter.into_iter().map(|k| (k, ())).collect());
        set
    }
}

impl<K, R> Extend<K> for NmTreeSet<K, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    /// Bulk insert: balanced single-publish build when empty,
    /// finger-anchored sorted batch otherwise (see
    /// [`Extend` on `NmTreeMap`](NmTreeMap::extend)).
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        self.map_mut()
            .bulk_extend(iter.into_iter().map(|k| (k, ())).collect());
    }
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Removes every key for which `pred` returns `false`.
    ///
    /// Requires exclusive access (it is a compound read-then-remove, so
    /// offering it concurrently would invite TOCTOU misuse); each
    /// removal still goes through the normal lock-free path.
    pub fn retain(&mut self, mut pred: impl FnMut(&K, &V) -> bool) {
        let mut doomed = Vec::new();
        self.for_each(|k, v| {
            if !pred(k, v) {
                doomed.push(k.clone());
            }
        });
        for k in &doomed {
            self.remove(k);
        }
    }
}

impl<K, R> NmTreeSet<K, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    /// Removes every key for which `pred` returns `false` (exclusive
    /// access; see [`NmTreeMap::retain`]).
    pub fn retain(&mut self, mut pred: impl FnMut(&K) -> bool) {
        let mut doomed = Vec::new();
        self.for_each(|k| {
            if !pred(k) {
                doomed.push(k.clone());
            }
        });
        for k in &doomed {
            self.remove(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, NmTreeSet};
    use nmbst_reclaim::Ebr;

    #[test]
    fn from_iterator_set() {
        let mut set: NmTreeSet<i32, Ebr> = (0..10).collect();
        assert_eq!(set.len(), 10);
        assert_eq!(set.keys(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn from_iterator_map_keeps_first_duplicate() {
        let map: NmTreeMap<i32, &str, Ebr> = [(1, "first"), (2, "two"), (1, "second")]
            .into_iter()
            .collect();
        assert_eq!(map.get(&1), Some("first"));
        assert_eq!(map.get(&2), Some("two"));
    }

    #[test]
    fn extend_set_and_map() {
        let mut set: NmTreeSet<i32, Ebr> = NmTreeSet::new();
        set.extend(0..5);
        set.extend(3..8); // overlap is fine
        assert_eq!(set.len(), 8);

        let mut map: NmTreeMap<i32, i32, Ebr> = NmTreeMap::new();
        map.extend((0..5).map(|k| (k, k * k)));
        assert_eq!(map.get(&4), Some(16));
    }

    #[test]
    fn retain_set() {
        let mut set: NmTreeSet<i32, Ebr> = (0..20).collect();
        set.retain(|k| k % 3 == 0);
        assert_eq!(set.keys(), vec![0, 3, 6, 9, 12, 15, 18]);
        set.check_invariants().unwrap();
    }

    #[test]
    fn retain_map_uses_values() {
        let mut map: NmTreeMap<i32, i32, Ebr> = (0..10).map(|k| (k, k * 10)).collect();
        map.retain(|_, v| *v >= 50);
        let mut keys = Vec::new();
        map.for_each(|k, _| keys.push(*k));
        assert_eq!(keys, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn retain_everything_and_nothing() {
        let mut set: NmTreeSet<i32, Ebr> = (0..10).collect();
        set.retain(|_| true);
        assert_eq!(set.len(), 10);
        set.retain(|_| false);
        assert_eq!(set.len(), 0);
        set.check_invariants().unwrap();
    }
}
