//! Modify operations: insert (Algorithm 2), delete (Algorithm 3) and the
//! shared cleanup routine (Algorithm 4).

use super::{NmTreeMap, SeekRecord};
use crate::chaos::{self, Action, Point};
use crate::key::Key;
use crate::node::{clean_edge, Node};
use crate::obs::{self, EventKind};
use crate::packed::Edge;
use crate::pool::{self, NodeCache};
use crate::stats;
use nmbst_reclaim::{Reclaim, RetireGuard};
use std::ptr;

/// What one [`NmTreeMap::cleanup`] call achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CleanupOutcome {
    /// This call performed the splice (and retired the chain).
    Spliced,
    /// Another thread changed the region first; re-seek and retry.
    Lost,
    /// A chaos hook abandoned the operation before the next atomic step;
    /// the region is left in a protocol-consistent in-flight state
    /// (flag and possibly tag planted) for helpers to finish.
    Abandoned,
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Inserts `key → value`. Returns `true` if the key was absent (the
    /// pair was added) and `false` if the key already exists — duplicate
    /// keys are rejected and `value` is dropped, per the paper's
    /// dictionary semantics.
    ///
    /// Lock-free. Publishes with a single CAS; on conflict with a delete
    /// it helps that delete complete and retries from a fresh seek. The
    /// two new nodes are allocated once and reused across retries.
    pub fn insert(&self, key: K, value: V) -> bool {
        let guard = self.reclaim.pin();
        let mut rec = SeekRecord::empty();
        let mut cache = self.node_cache();
        // SAFETY: `guard` pins this tree's reclaimer for the whole call;
        // `cache` serves this tree's pool.
        let added = unsafe { self.insert_in(key, value, &guard, &mut rec, &mut cache) };
        self.metrics.note_insert(added);
        added
    }

    /// [`insert`](Self::insert) against a caller-provided guard and
    /// seek-record scratch — the shared internal entry point of the
    /// plain API and [`MapHandle`](crate::MapHandle).
    ///
    /// # Safety
    ///
    /// `guard` must pin this tree's reclaimer and stay held for the
    /// whole call. `rec` is pure scratch: its previous contents are
    /// ignored (the first seek of the call is always a full root seek).
    /// `cache` must serve this tree's pool (from
    /// [`node_cache`](Self::node_cache) / [`handle_cache`](Self::handle_cache)).
    pub(crate) unsafe fn insert_in(
        &self,
        key: K,
        value: V,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
        cache: &mut NodeCache<'_>,
    ) -> bool {
        // SAFETY: forwarded contract (`finger = false` ignores `rec`).
        unsafe { self.insert_from(key, value, guard, rec, cache, false) }.0
    }

    /// [`insert_in`](Self::insert_in) with a *finger*: when `finger` is
    /// true, the first seek descends from `rec`'s previous
    /// `(ancestor → successor)` anchor if it revalidates (the batch-op
    /// fast path). Returns `(added, finger_hit)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`insert_in`](Self::insert_in); when `finger` is
    /// true, `rec` must additionally hold a record produced under the
    /// same continuously-held guard (see
    /// [`seek_finger`](Self::seek_finger)).
    pub(crate) unsafe fn insert_from(
        &self,
        key: K,
        value: V,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
        cache: &mut NodeCache<'_>,
        finger: bool,
    ) -> (bool, bool) {
        let mut value = Some(value);
        // Scratch nodes, allocated on first use and reused on retry;
        // they stay private until the publishing CAS succeeds.
        let mut new_leaf: *mut Node<K, V> = ptr::null_mut();
        let mut new_internal: *mut Node<K, V> = ptr::null_mut();
        let mut first_seek = true;
        let mut hit = false;

        loop {
            if first_seek {
                first_seek = false;
                // SAFETY: `guard` held per contract (`finger` vouches for
                // the record's provenance).
                hit = unsafe { self.seek_finger(&key, rec, finger) };
            } else {
                if chaos::hit(Point::SeekRetry) == Action::Abandon {
                    // SAFETY: scratch nodes are unpublished (every CAS
                    // failed).
                    unsafe { discard_scratch(cache, new_leaf, new_internal) };
                    return (false, hit);
                }
                // SAFETY: `guard` held continuously since `rec` was
                // produced, as `seek_retry` requires.
                unsafe { self.seek_retry(&key, rec) };
            }
            let leaf = rec.leaf;
            // SAFETY: `leaf` was read under `guard`; keys are immutable.
            if unsafe { (*leaf).key.is_user(&key) } {
                // Key already present (Algorithm 2, line 59).
                unsafe { discard_scratch(cache, new_leaf, new_internal) };
                return (false, hit);
            }

            let parent = rec.parent;
            // SAFETY: `parent` read under `guard`.
            let child_edge = unsafe { (*parent).child_for(&key) };

            // Build (or rebuild) the two-node subtree: the new internal
            // node routes with max(key, leaf.key); the smaller key goes
            // left (Figure 1a).
            unsafe {
                if new_leaf.is_null() {
                    new_leaf = Node::new_leaf_in(
                        cache,
                        Key::Fin(key.clone()),
                        Some(value.take().expect("value consumed before publication")),
                    );
                }
                let leaf_key = &(*leaf).key;
                let (internal_key, left, right) = if leaf_key.user_goes_left(&key) {
                    // key < leaf.key: new leaf on the left, routed by leaf.key.
                    (leaf_key.clone(), new_leaf, leaf)
                } else {
                    (Key::Fin(key.clone()), leaf, new_leaf)
                };
                if new_internal.is_null() {
                    new_internal = Node::new_internal_in(cache, internal_key, left, right);
                } else {
                    // Unpublished: plain rewrites are fine.
                    let scratch = &mut *new_internal;
                    scratch.key = internal_key;
                    scratch.left.store_unsynchronized(Edge::clean(left));
                    scratch.right.store_unsynchronized(Edge::clean(right));
                }
            }

            if chaos::hit(Point::InsertPublish) == Action::Abandon {
                // SAFETY: scratch nodes are unpublished.
                unsafe { discard_scratch(cache, new_leaf, new_internal) };
                return (false, hit);
            }
            // The single publishing CAS (Algorithm 2, line 51).
            match child_edge.compare_exchange(clean_edge(leaf), clean_edge(new_internal)) {
                Ok(()) => return (true, hit),
                Err(observed) => {
                    // Help a conflicting delete if the injection point is
                    // unchanged but marked (lines 55–57), then retry.
                    if observed.ptr() == leaf && observed.marked() {
                        self.metrics.note_help();
                        obs::emit(EventKind::Help);
                        // SAFETY: record still refers to nodes protected
                        // by `guard`.
                        let outcome = unsafe { self.cleanup(&key, rec, guard) };
                        if outcome == CleanupOutcome::Abandoned {
                            // SAFETY: scratch nodes are unpublished.
                            unsafe { discard_scratch(cache, new_leaf, new_internal) };
                            return (false, hit);
                        }
                    }
                }
            }
        }
    }

    /// Removes `key`. Returns `true` if the key was present.
    ///
    /// Lock-free. One CAS linearizes the removal (flagging the edge to
    /// the victim leaf); one BTS plus one CAS splice it out physically,
    /// possibly along with a whole chain of other logically deleted
    /// nodes. Deletion allocates nothing.
    pub fn remove(&self, key: &K) -> bool {
        self.remove_and(key, |_| ()).is_some()
    }

    /// Removes `key` and returns its value. `None` if the key was absent.
    pub fn remove_get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.remove_and(key, |leaf| leaf.value.clone()).flatten()
    }

    /// Algorithm 3. `read` runs exactly once, immediately after this
    /// thread's injection CAS succeeds — the point where the removal
    /// linearizes and the leaf is still protected by our guard.
    fn remove_and<T>(&self, key: &K, read: impl FnOnce(&Node<K, V>) -> T) -> Option<T> {
        let guard = self.reclaim.pin();
        let mut rec = SeekRecord::empty();
        // SAFETY: `guard` pins this tree's reclaimer for the whole call.
        let removed = unsafe { self.remove_in(key, read, &guard, &mut rec) };
        self.metrics.note_remove(removed.is_some());
        removed
    }

    /// [`remove_and`](Self::remove_and) against a caller-provided guard
    /// and seek-record scratch — the shared internal entry point of the
    /// plain API and [`MapHandle`](crate::MapHandle).
    ///
    /// # Safety
    ///
    /// Same contract as [`insert_in`](Self::insert_in).
    pub(crate) unsafe fn remove_in<T>(
        &self,
        key: &K,
        read: impl FnOnce(&Node<K, V>) -> T,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
    ) -> Option<T> {
        // SAFETY: forwarded contract (`finger = false` ignores `rec`).
        unsafe { self.remove_from(key, read, guard, rec, false) }.0
    }

    /// [`remove_in`](Self::remove_in) with a *finger* (see
    /// [`insert_from`](Self::insert_from)). Returns
    /// `(removed, finger_hit)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`insert_from`](Self::insert_from).
    pub(crate) unsafe fn remove_from<T>(
        &self,
        key: &K,
        read: impl FnOnce(&Node<K, V>) -> T,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
        finger: bool,
    ) -> (Option<T>, bool) {
        let mut read = Some(read);
        let mut injecting = true;
        let mut target: *mut Node<K, V> = ptr::null_mut();
        let mut result: Option<T> = None;
        let mut first_seek = true;
        let mut hit = false;

        loop {
            if first_seek {
                first_seek = false;
                // SAFETY: `guard` held per contract (`finger` vouches for
                // the record's provenance); in cleanup mode it also keeps
                // `target` comparable by address (the leaf cannot be
                // freed and recycled while we are pinned).
                hit = unsafe { self.seek_finger(key, rec, finger) };
            } else {
                if chaos::hit(Point::SeekRetry) == Action::Abandon {
                    // Before injection `result` is `None` (op never
                    // happened); after it, the delete already linearized
                    // and the planted flag lets any helper finish the
                    // splice.
                    return (result, hit);
                }
                // SAFETY: `guard` held continuously since `rec` was
                // produced, as `seek_retry` requires.
                unsafe { self.seek_retry(key, rec) };
            }
            let parent = rec.parent;
            // SAFETY: read under `guard`.
            let child_edge = unsafe { (*parent).child_for(key) };

            if injecting {
                let leaf = rec.leaf;
                // SAFETY: read under `guard`.
                if !unsafe { (*leaf).key.is_user(key) } {
                    return (None, hit); // key absent (line 72)
                }
                if chaos::hit(Point::DeleteInject) == Action::Abandon {
                    return (None, hit); // abandoned before linearizing: a no-op
                }
                // Injection: flag the edge to the victim (line 73). This
                // is the linearization point of a successful delete.
                let clean = clean_edge(leaf);
                match child_edge.compare_exchange(clean, clean.flagged()) {
                    Ok(()) => {
                        obs::emit(EventKind::InjectFlag);
                        // SAFETY: leaf is immutable and guard-protected.
                        result = Some(read.take().expect("read used once")(unsafe { &*leaf }));
                        target = leaf;
                        injecting = false;
                        // SAFETY: record protected by `guard`.
                        match unsafe { self.cleanup(key, rec, guard) } {
                            // Abandoned: the delete already linearized at
                            // the flag; leave the splice to helpers.
                            CleanupOutcome::Spliced | CleanupOutcome::Abandoned => {
                                return (result, hit)
                            }
                            CleanupOutcome::Lost => {}
                        }
                    }
                    Err(observed) => {
                        if observed.ptr() == leaf && observed.marked() {
                            self.metrics.note_help();
                            obs::emit(EventKind::Help);
                            // SAFETY: record protected by `guard`.
                            let outcome = unsafe { self.cleanup(key, rec, guard) };
                            if outcome == CleanupOutcome::Abandoned {
                                return (None, hit); // not yet linearized: a no-op
                            }
                        }
                    }
                }
            } else {
                // Cleanup mode (lines 82–87): if the flagged leaf is no
                // longer on the access path, a helper already removed it.
                if rec.leaf != target {
                    return (result, hit);
                }
                // SAFETY: record protected by `guard`.
                match unsafe { self.cleanup(key, rec, guard) } {
                    CleanupOutcome::Spliced | CleanupOutcome::Abandoned => return (result, hit),
                    CleanupOutcome::Lost => {}
                }
            }
        }
    }

    /// Algorithm 4: tag the sibling edge, then splice at the ancestor.
    /// Invoked by the delete that owns the flag *and* by any operation
    /// helping it.
    ///
    /// On a won splice the record's `successor` is repointed at the
    /// hoisted survivor: `(ancestor → survivor)` is exactly the edge our
    /// CAS just installed, so it is the freshest possible local-restart
    /// anchor for the retry loops and the batch-op finger (it fails
    /// revalidation harmlessly if the survivor is a leaf or the edge
    /// moved again).
    ///
    /// # Safety
    ///
    /// `rec` must come from a seek under `guard`, still held.
    pub(crate) unsafe fn cleanup(
        &self,
        key: &K,
        rec: &mut SeekRecord<K, V>,
        guard: &R::Guard<'_>,
    ) -> CleanupOutcome {
        stats::record_cleanup();
        let ancestor = rec.ancestor;
        let successor = rec.successor;
        let parent = rec.parent;

        // SAFETY (derefs below): all four record nodes are protected by
        // `guard`; even if already spliced out by another thread they
        // cannot have been freed.
        let successor_edge = unsafe { (*ancestor).child_for(key) };
        let (child_edge, sibling_edge) = unsafe { (*parent).child_and_sibling_for(key) };

        // Lines 103–105: if the edge to our leaf is not flagged, the
        // delete being helped flagged the *other* child; the roles swap
        // and our side is the one to hoist.
        let child_val = child_edge.load();
        let sibling_edge = if !child_val.flag() {
            child_edge
        } else {
            sibling_edge
        };

        if chaos::hit(Point::Tag) == Action::Abandon {
            return CleanupOutcome::Abandoned;
        }
        // Line 106: tag the edge that will be hoisted. Unconditional and
        // idempotent — after this, neither child of `parent` can change,
        // so `parent` can never again be an injection point.
        sibling_edge.set_tag(self.tag_mode);
        obs::emit(EventKind::TagSibling);

        if chaos::hit(Point::Splice) == Action::Abandon {
            return CleanupOutcome::Abandoned;
        }
        // Lines 107–108: splice. The hoisted edge keeps its flag (its
        // head may itself be a leaf some delete already flagged; the flag
        // must survive the move so that delete can still be helped).
        // `Bug::DropFlagOnSplice` deliberately loses that copy.
        let sib = sibling_edge.load();
        let keep_flag = sib.flag() && !chaos::bug_enabled(chaos::Bug::DropFlagOnSplice);
        match successor_edge.compare_exchange(
            clean_edge(successor),
            Edge::with_marks(keep_flag, false, sib.ptr()),
        ) {
            Ok(()) => {
                // We won the splice: everything that hung below
                // `successor`, except the hoisted survivor subtree, just
                // left the tree — retire it (exactly once, by us).
                if chaos::hit(Point::Retire) == Action::Abandon {
                    return CleanupOutcome::Spliced; // leak the chain
                }
                obs::emit(EventKind::Retire);
                // SAFETY: the detached region is frozen (every edge in it
                // is marked) and unreachable from the root.
                let chain_len = unsafe { self.retire_chain(successor, sib.ptr(), guard) };
                // `Splice` carries the chain length, which is only known
                // after the detached region has been walked — hence this
                // delete's `Retire` precedes its `Splice` in the trace.
                obs::emit(EventKind::Splice {
                    chain_len: chain_len.min(u32::MAX as u64) as u32,
                });
                // Repoint the record at the edge we just wrote (see the
                // method docs); the detached `successor`/`parent`/`leaf`
                // pointers stay guard-protected but are now stale. The
                // positional bounds (`rec.lo`/`hi`) stay valid verbatim:
                // they bound the *edge position* at `ancestor`, which the
                // splice did not move — only the subtree hanging there
                // changed.
                rec.successor = sib.ptr();
                CleanupOutcome::Spliced
            }
            Err(_) => CleanupOutcome::Lost,
        }
    }

    /// Retires the chain a successful splice detached: the subtree rooted
    /// at `from`, minus the subtree of the hoisted `survivor`. Returns
    /// the number of nodes retired.
    ///
    /// Recursion depth is bounded by the number of concurrent deletes
    /// whose victims lay on this access path (each tagged edge on the
    /// chain belongs to one), so it cannot overflow.
    ///
    /// # Safety
    ///
    /// Caller must be the thread whose splice CAS detached `from`, and
    /// must still hold `guard`.
    unsafe fn retire_chain(
        &self,
        from: *mut Node<K, V>,
        survivor: *mut Node<K, V>,
        guard: &R::Guard<'_>,
    ) -> u64 {
        let mut unlinked = 0;
        // SAFETY: forwarded contract.
        unsafe { self.retire_rec(from, survivor, guard, &mut unlinked) };
        stats::record_splice(unlinked);
        unlinked
    }

    unsafe fn retire_rec(
        &self,
        node: *mut Node<K, V>,
        survivor: *mut Node<K, V>,
        guard: &R::Guard<'_>,
        unlinked: &mut u64,
    ) {
        if node.is_null() || node == survivor {
            return;
        }
        // SAFETY: nodes in the detached region are frozen; their edges
        // are immutable and the nodes are guard-protected.
        let left = unsafe { (*node).left.load() }.ptr();
        let right = unsafe { (*node).right.load() }.ptr();
        unsafe {
            self.retire_rec(left, survivor, guard, unlinked);
            self.retire_rec(right, survivor, guard, unlinked);
        }
        *unlinked += 1;
        stats::record_retire();
        // SAFETY: detached by our splice, retired exactly once (only the
        // splice winner walks this region).
        unsafe { self.retire_node(node, guard) };
    }

    /// Hands one detached node to the reclaimer — as a *recycle* deferral
    /// when this tree pools nodes and the scheme actually runs deferrals,
    /// as a plain drop otherwise. Recycling under [`Leaky`]-style schemes
    /// (`R::RECLAIMS == false`) would only leak a pool refcount per node,
    /// so those fall back to the plain (leaking) retire.
    ///
    /// # Safety
    ///
    /// Same contract as [`RetireGuard::retire`]: `node` is unlinked, not
    /// retired before, and `guard` pins this tree's reclaimer.
    #[inline]
    unsafe fn retire_node(&self, node: *mut Node<K, V>, guard: &R::Guard<'_>) {
        match &self.pool {
            Some(shared) if R::RECLAIMS => {
                // SAFETY: `recycle_deferred` releases exactly once and the
                // scheme proves the grace period before running it; node
                // provenance (Box or this pool) holds for every tree node.
                unsafe { guard.retire_deferred(pool::recycle_deferred(node, shared)) }
            }
            // SAFETY: forwarded caller contract.
            _ => unsafe { guard.retire(node) },
        }
    }
}

/// Returns insert's scratch nodes to the cache when the operation
/// concludes without publishing them — the next insert through the same
/// cache/pool gets them back without touching the allocator.
///
/// # Safety
///
/// The nodes must never have been published (no CAS installed them) and
/// must have been allocated through `cache` (or a cache over the same
/// pool).
unsafe fn discard_scratch<K, V>(
    cache: &mut NodeCache<'_>,
    leaf: *mut Node<K, V>,
    internal: *mut Node<K, V>,
) {
    if !leaf.is_null() {
        // SAFETY: unpublished, uniquely owned; drops the key and value.
        unsafe { cache.free(leaf) };
    }
    if !internal.is_null() {
        // SAFETY: unpublished; its child edges are raw words, so no
        // double free of the children.
        unsafe { cache.free(internal) };
    }
}

#[cfg(test)]
mod tests {
    use crate::NmTreeMap;
    use nmbst_reclaim::{Ebr, Leaky};

    #[test]
    fn insert_then_contains() {
        let map: NmTreeMap<i64, i64, Leaky> = NmTreeMap::new();
        assert!(map.insert(10, 100));
        assert!(map.insert(5, 50));
        assert!(map.insert(15, 150));
        assert!(map.contains(&10));
        assert!(map.contains(&5));
        assert!(map.contains(&15));
        assert!(!map.contains(&7));
    }

    #[test]
    fn duplicate_insert_rejected_and_value_dropped() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let map: NmTreeMap<i64, D, Ebr> = NmTreeMap::new();
        assert!(map.insert(1, D(Arc::clone(&drops))));
        assert!(!map.insert(1, D(Arc::clone(&drops))));
        // The rejected value must have been dropped, the stored one not.
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(map);
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn remove_present_and_absent() {
        let map: NmTreeMap<i64, (), Leaky> = NmTreeMap::new();
        for k in [4, 2, 6, 1, 3, 5, 7] {
            assert!(map.insert(k, ()));
        }
        assert!(map.remove(&4));
        assert!(!map.remove(&4));
        assert!(!map.remove(&99));
        assert!(!map.contains(&4));
        for k in [2, 6, 1, 3, 5, 7] {
            assert!(map.contains(&k), "lost key {k}");
        }
    }

    #[test]
    fn remove_get_returns_value() {
        let map: NmTreeMap<i64, String, Ebr> = NmTreeMap::new();
        map.insert(1, "one".to_string());
        assert_eq!(map.remove_get(&1), Some("one".to_string()));
        assert_eq!(map.remove_get(&1), None);
    }

    #[test]
    fn reinsert_after_remove() {
        let map: NmTreeMap<i64, i64, Ebr> = NmTreeMap::new();
        for round in 0..5 {
            assert!(map.insert(42, round));
            assert_eq!(map.get(&42), Some(round));
            assert!(map.remove(&42));
            assert!(!map.contains(&42));
        }
    }

    #[test]
    fn delete_only_key_restores_empty_shape() {
        let mut map: NmTreeMap<i64, (), Ebr> = NmTreeMap::new();
        assert!(map.insert(9, ()));
        assert!(map.remove(&9));
        let shape = map.check_invariants().expect("invariants");
        assert_eq!(shape.user_keys, 0);
    }

    #[test]
    fn interleaved_single_thread_model_check() {
        // Deterministic pseudo-random op sequence vs a BTreeSet model.
        let mut model = std::collections::BTreeSet::new();
        let mut map: NmTreeMap<u64, (), Ebr> = NmTreeMap::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 64;
            match state % 3 {
                0 => assert_eq!(map.insert(key, ()), model.insert(key), "insert {key}"),
                1 => assert_eq!(map.remove(&key), model.remove(&key), "remove {key}"),
                _ => assert_eq!(map.contains(&key), model.contains(&key), "contains {key}"),
            }
        }
        let shape = map.check_invariants().expect("invariants");
        assert_eq!(shape.user_keys, model.len());
    }
}
