//! Modify operations: insert (Algorithm 2), delete (Algorithm 3) and the
//! shared cleanup routine (Algorithm 4), extended to fat leaf blocks.
//!
//! A leaf is an immutable sorted block of up to `leaf_cap` entries.
//! Every block mutation is copy-on-write: build the replacement block(s)
//! privately, publish with **one** CAS on the parent edge — exactly the
//! shape of the paper's insert publication, so the protocol argument
//! (flag/tag/splice only ever contend with clean-edge CASes) transfers
//! verbatim. The classic two-node insert and the flag/tag/splice delete
//! remain as the boundary cases: a sentinel or full-block boundary
//! insert grows the tree by an internal node, and a 1-entry block is
//! removed by splicing (so `leaf_cap = 1` reproduces the original
//! algorithm operation for operation).

use super::{NmTreeMap, SeekRecord};
use crate::chaos::{self, Action, Point};
use crate::key::Key;
use crate::node::{self, clean_edge, Node, HINT_NONE};
use crate::obs::{self, EventKind};
use crate::pool::{self, NodeCache};
use crate::stats;
use nmbst_reclaim::{Reclaim, RetireGuard};
use std::ptr;

/// What one [`NmTreeMap::cleanup`] call achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CleanupOutcome {
    /// This call performed the splice (and retired the chain).
    Spliced,
    /// Another thread changed the region first; re-seek and retry.
    Lost,
    /// A chaos hook abandoned the operation before the next atomic step;
    /// the region is left in a protocol-consistent in-flight state
    /// (flag and possibly tag planted) for helpers to finish.
    Abandoned,
}

/// One insert attempt's private, unpublished node(s). Which variant is
/// built depends on where the key lands (see [`NmTreeMap::insert_from`]);
/// all of them publish with a single CAS and, if that CAS loses, are torn
/// down with [`dismantle`](Scratch::dismantle) to recover the pending
/// entry.
enum Scratch<K, V> {
    /// The paper's two-node subtree: a fresh 1-entry leaf under a fresh
    /// internal router, next to the existing leaf. Used for sentinel
    /// leaves and for boundary inserts into a full block.
    Classic {
        leaf: *mut Node<K, V>,
        internal: *mut Node<K, V>,
    },
    /// A copy of the target block with the entry added (block not full).
    Cow { block: *mut Node<K, V>, pos: usize },
    /// A full block split into two halves under a fresh router.
    Split {
        internal: *mut Node<K, V>,
        holder: *mut Node<K, V>,
        hpos: usize,
    },
}

impl<K, V> Scratch<K, V> {
    /// The node the publishing CAS installs.
    fn top(&self) -> *mut Node<K, V> {
        match *self {
            Scratch::Classic { internal, .. } => internal,
            Scratch::Cow { block, .. } => block,
            Scratch::Split { internal, .. } => internal,
        }
    }

    /// Tears a losing attempt down: moves the pending `(key, value)` back
    /// out and returns every shell (and its routing-key clone) to the
    /// cache. Entries that were bitwise copies of the published block's
    /// entries are left untouched — the old block still owns them.
    ///
    /// # Safety
    ///
    /// The scratch must be unpublished (its CAS failed or was never
    /// attempted) and built through `cache`'s pool.
    unsafe fn dismantle(self, cache: &mut NodeCache<'_>) -> (K, V) {
        match self {
            Scratch::Classic { leaf, internal } => {
                // SAFETY: slot 0 holds the pending entry, written once.
                let kv = unsafe { Node::take_entry(leaf, 0) };
                // SAFETY: unpublished + exclusively owned per contract.
                unsafe {
                    free_scratch(cache, leaf);
                    free_scratch(cache, internal);
                }
                kv
            }
            Scratch::Cow { block, pos } => {
                // SAFETY: `pos` holds the pending entry, written once.
                let kv = unsafe { Node::take_entry(block, pos) };
                // SAFETY: as above.
                unsafe { free_scratch(cache, block) };
                kv
            }
            Scratch::Split {
                internal,
                holder,
                hpos,
            } => {
                // SAFETY: the halves are unpublished, so their clean child
                // edges are exactly what `new_internal_in` stored.
                let (left, right) = unsafe {
                    let arena = cache.arena();
                    (
                        (*internal).left.load(arena).ptr(),
                        (*internal).right.load(arena).ptr(),
                    )
                };
                // SAFETY: `(holder, hpos)` locate the pending entry.
                let kv = unsafe { Node::take_entry(holder, hpos) };
                // SAFETY: as above.
                unsafe {
                    free_scratch(cache, left);
                    free_scratch(cache, right);
                    free_scratch(cache, internal);
                }
                kv
            }
        }
    }
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Inserts `key → value`. Returns `true` if the key was absent (the
    /// pair was added) and `false` if the key already exists — duplicate
    /// keys are rejected and `value` is dropped, per the paper's
    /// dictionary semantics.
    ///
    /// Lock-free. Publishes with a single CAS; on conflict with a delete
    /// it helps that delete complete and retries from a fresh seek.
    pub fn insert(&self, key: K, value: V) -> bool {
        let guard = self.reclaim.pin();
        let mut rec = SeekRecord::empty();
        let mut cache = self.node_cache();
        let t = self.metrics.op_timer();
        // SAFETY: `guard` pins this tree's reclaimer for the whole call;
        // `cache` serves this tree's pool.
        let added = unsafe { self.insert_in(key, value, &guard, &mut rec, &mut cache) };
        self.metrics.note_insert(added);
        self.metrics.op_finish(crate::obs::OpClass::Insert, t);
        added
    }

    /// [`insert`](Self::insert) against a caller-provided guard and
    /// seek-record scratch — the shared internal entry point of the
    /// plain API and [`MapHandle`](crate::MapHandle).
    ///
    /// # Safety
    ///
    /// `guard` must pin this tree's reclaimer and stay held for the
    /// whole call. `rec` is pure scratch: its previous contents are
    /// ignored (the first seek of the call is always a full root seek).
    /// `cache` must serve this tree's pool (from
    /// [`node_cache`](Self::node_cache) / [`handle_cache`](Self::handle_cache)).
    pub(crate) unsafe fn insert_in(
        &self,
        key: K,
        value: V,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
        cache: &mut NodeCache<'_>,
    ) -> bool {
        // SAFETY: forwarded contract (`finger = false` ignores `rec`).
        unsafe { self.insert_from(key, value, guard, rec, cache, false) }.0
    }

    /// [`insert_in`](Self::insert_in) with a *finger*: when `finger` is
    /// true, the first seek descends from `rec`'s previous
    /// `(ancestor → successor)` anchor if it revalidates (the batch-op
    /// fast path). Returns `(added, finger_hit)`.
    ///
    /// Case analysis, with `n` the target block's entry count and `cap`
    /// this tree's `leaf_cap`:
    ///
    /// * sentinel leaf, or full block with the key outside its range —
    ///   classic two-node subtree next to the untouched leaf (2 allocs,
    ///   nothing retired);
    /// * `n < cap` — copy-on-write block with the entry spliced in
    ///   (1 alloc, old block retired);
    /// * full block, key interior — split into two halves under a fresh
    ///   router (3 allocs, old block retired).
    ///
    /// All three publish with one CAS on the parent edge. At
    /// `cap = 1` only the first case can occur, reproducing the paper's
    /// Table 1 cost exactly.
    ///
    /// # Safety
    ///
    /// Same contract as [`insert_in`](Self::insert_in); when `finger` is
    /// true, `rec` must additionally hold a record produced under the
    /// same continuously-held guard (see
    /// [`seek_finger`](Self::seek_finger)).
    pub(crate) unsafe fn insert_from(
        &self,
        key: K,
        value: V,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
        cache: &mut NodeCache<'_>,
        finger: bool,
    ) -> (bool, bool) {
        let arena = self.arena();
        let cap = self.leaf_cap;
        // The entry travels in and out of scratch nodes across retries.
        let mut pending = Some((key, value));
        let mut first_seek = true;
        let mut hit = false;

        loop {
            if first_seek {
                first_seek = false;
                let k = &pending.as_ref().expect("entry pending at seek").0;
                // SAFETY: `guard` held per contract (`finger` vouches for
                // the record's provenance).
                hit = unsafe { self.seek_finger(k, rec, finger) };
            } else {
                if chaos::hit(Point::SeekRetry) == Action::Abandon {
                    return (false, hit); // pending entry dropped
                }
                let k = &pending.as_ref().expect("entry pending at seek").0;
                // SAFETY: `guard` held continuously since `rec` was
                // produced, as `seek_retry` requires.
                unsafe { self.seek_retry(k, rec) };
            }
            let leaf = rec.leaf;
            let (key, value) = pending.take().expect("entry pending after seek");
            // SAFETY: `leaf` was read under `guard`; blocks are immutable.
            let (len, pos) = unsafe {
                match (*leaf).find(&key) {
                    // Key already present (Algorithm 2, line 59): reject
                    // the duplicate, dropping the pending entry.
                    Ok(_) => return (false, hit),
                    Err(pos) => ((*leaf).len(), pos),
                }
            };

            let parent = rec.parent;
            // SAFETY: `parent` read under `guard`.
            let child_edge = unsafe { (*parent).child_for(&key) };

            // Build the private replacement; see the method docs for the
            // case analysis.
            // SAFETY (block builders): `leaf` is guard-protected and
            // immutable; `pos`/`len` were just computed against it.
            let scratch = if len == 0 || (len >= cap && (pos == 0 || pos == len)) {
                // Classic (Figure 1a). The router must cover the block it
                // sits above: the sentinel's own key when growing at a
                // sentinel, the block's min when the new key is smaller
                // than the whole block, the new key when it is larger.
                let (router, new_on_left) = unsafe {
                    if len == 0 {
                        ((*leaf).key.clone(), true)
                    } else if pos == 0 {
                        (Key::Fin((*leaf).entry_keys()[0].clone()), true)
                    } else {
                        (Key::Fin(key.clone()), false)
                    }
                };
                let new_leaf = Node::new_user_leaf_in(cache, key, value);
                let (l, r) = if new_on_left {
                    (new_leaf, leaf)
                } else {
                    (leaf, new_leaf)
                };
                let internal = Node::new_internal_in(cache, router, l, r);
                Scratch::Classic {
                    leaf: new_leaf,
                    internal,
                }
            } else if len < cap {
                let block = unsafe { Node::block_insert_copy(cache, &*leaf, pos, key, value) };
                Scratch::Cow { block, pos }
            } else {
                let (internal, holder, hpos) =
                    unsafe { Node::block_split_insert(cache, &*leaf, pos, key, value) };
                Scratch::Split {
                    internal,
                    holder,
                    hpos,
                }
            };

            if chaos::hit(Point::InsertPublish) == Action::Abandon {
                // SAFETY: scratch unpublished; entry recovered then dropped.
                drop(unsafe { scratch.dismantle(cache) });
                return (false, hit);
            }
            // The single publishing CAS (Algorithm 2, line 51).
            match child_edge.compare_exchange(clean_edge(leaf), clean_edge(scratch.top()), arena) {
                Ok(()) => {
                    if matches!(scratch, Scratch::Cow { .. } | Scratch::Split { .. }) {
                        // The old block's entries moved (bitwise) into the
                        // replacement; retire its shell and routing key.
                        if chaos::hit(Point::Retire) == Action::Abandon {
                            return (true, hit); // leak the old block
                        }
                        stats::record_retire();
                        // SAFETY: `leaf` just became unreachable (our CAS
                        // removed the last edge to it) and only the CAS
                        // winner retires it; HINT_NONE disowns the moved
                        // entries.
                        unsafe {
                            (*leaf).set_drop_hint(HINT_NONE);
                            self.retire_node(leaf, guard);
                        }
                    }
                    return (true, hit);
                }
                Err(observed) => {
                    // SAFETY: scratch unpublished (the CAS failed).
                    pending = Some(unsafe { scratch.dismantle(cache) });
                    // Help a conflicting delete if the injection point is
                    // unchanged but marked (lines 55–57), then retry.
                    if observed.ptr() == leaf && observed.marked() {
                        self.metrics.note_help();
                        obs::emit(EventKind::Help);
                        // SAFETY: record still refers to nodes protected
                        // by `guard`.
                        let outcome =
                            unsafe { self.cleanup(&pending.as_ref().unwrap().0, rec, guard) };
                        if outcome == CleanupOutcome::Abandoned {
                            return (false, hit); // pending entry dropped
                        }
                    }
                }
            }
        }
    }

    /// Removes `key`. Returns `true` if the key was present.
    ///
    /// Lock-free. Removal from a multi-entry block is a copy-on-write
    /// publish: one CAS installs the shrunken block and linearizes the
    /// delete. Removal of a block's last entry is the paper's protocol:
    /// one CAS linearizes (flagging the edge to the victim leaf); one BTS
    /// plus one CAS splice it out physically, possibly along with a whole
    /// chain of other logically deleted nodes.
    pub fn remove(&self, key: &K) -> bool {
        self.remove_and(key, |_| ()).is_some()
    }

    /// Removes `key` and returns its value. `None` if the key was absent.
    pub fn remove_get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.remove_and(key, V::clone)
    }

    /// Algorithm 3. `read` runs exactly once, immediately after this
    /// thread's linearizing CAS succeeds — the point where the entry is
    /// logically removed but its block is still protected by our guard.
    fn remove_and<T>(&self, key: &K, read: impl FnOnce(&V) -> T) -> Option<T> {
        let guard = self.reclaim.pin();
        let mut rec = SeekRecord::empty();
        let mut cache = self.node_cache();
        let t = self.metrics.op_timer();
        // SAFETY: `guard` pins this tree's reclaimer for the whole call;
        // `cache` serves this tree's pool.
        let removed = unsafe { self.remove_in(key, read, &guard, &mut rec, &mut cache) };
        self.metrics.note_remove(removed.is_some());
        self.metrics.op_finish(crate::obs::OpClass::Remove, t);
        removed
    }

    /// [`remove_and`](Self::remove_and) against a caller-provided guard
    /// and seek-record scratch — the shared internal entry point of the
    /// plain API and [`MapHandle`](crate::MapHandle).
    ///
    /// # Safety
    ///
    /// Same contract as [`insert_in`](Self::insert_in).
    pub(crate) unsafe fn remove_in<T>(
        &self,
        key: &K,
        read: impl FnOnce(&V) -> T,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
        cache: &mut NodeCache<'_>,
    ) -> Option<T> {
        // SAFETY: forwarded contract (`finger = false` ignores `rec`).
        unsafe { self.remove_from(key, read, guard, rec, cache, false) }.0
    }

    /// [`remove_in`](Self::remove_in) with a *finger* (see
    /// [`insert_from`](Self::insert_from)). Returns
    /// `(removed, finger_hit)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`insert_from`](Self::insert_from).
    pub(crate) unsafe fn remove_from<T>(
        &self,
        key: &K,
        read: impl FnOnce(&V) -> T,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
        cache: &mut NodeCache<'_>,
        finger: bool,
    ) -> (Option<T>, bool) {
        let arena = self.arena();
        let mut read = Some(read);
        let mut injecting = true;
        let mut target: *mut Node<K, V> = ptr::null_mut();
        let mut result: Option<T> = None;
        let mut first_seek = true;
        let mut hit = false;

        loop {
            if first_seek {
                first_seek = false;
                // SAFETY: `guard` held per contract (`finger` vouches for
                // the record's provenance); in cleanup mode it also keeps
                // `target` comparable by address (the leaf cannot be
                // freed and recycled while we are pinned).
                hit = unsafe { self.seek_finger(key, rec, finger) };
            } else {
                if chaos::hit(Point::SeekRetry) == Action::Abandon {
                    // Before linearization `result` is `None` (op never
                    // happened); after it, the delete already linearized
                    // and the planted flag lets any helper finish the
                    // splice.
                    return (result, hit);
                }
                // SAFETY: `guard` held continuously since `rec` was
                // produced, as `seek_retry` requires.
                unsafe { self.seek_retry(key, rec) };
            }
            let parent = rec.parent;
            // SAFETY: read under `guard`.
            let child_edge = unsafe { (*parent).child_for(key) };

            if injecting {
                let leaf = rec.leaf;
                // SAFETY: read under `guard`; blocks are immutable.
                let pos = match unsafe { (*leaf).find(key) } {
                    Ok(pos) => pos,
                    Err(_) => return (None, hit), // key absent (line 72)
                };
                // SAFETY: as above.
                let len = unsafe { (*leaf).len() };

                if len >= 2 {
                    // Copy-on-write removal: publish the shrunken block
                    // with one CAS — that CAS is the linearization point.
                    // The block stays in place; no flag/tag/splice.
                    // SAFETY: `pos < len`, `len >= 2`, `leaf` immutable.
                    let block = unsafe { Node::block_remove_copy(cache, &*leaf, pos) };
                    if chaos::hit(Point::DeleteInject) == Action::Abandon {
                        // SAFETY: unpublished; no entry pending inside.
                        unsafe { free_scratch(cache, block) };
                        return (None, hit); // abandoned before linearizing
                    }
                    match child_edge.compare_exchange(clean_edge(leaf), clean_edge(block), arena) {
                        Ok(()) => {
                            // SAFETY: the old block is unreachable but
                            // guard-protected; entry `pos` still lives
                            // there (the copy skipped it).
                            let out = unsafe {
                                read.take().expect("read used once")(&(*leaf).entry_vals()[pos])
                            };
                            if chaos::hit(Point::Retire) == Action::Abandon {
                                return (Some(out), hit); // leak the old block
                            }
                            stats::record_retire();
                            // SAFETY: unreachable since our CAS; only the
                            // CAS winner retires it. The hint hands the
                            // removed entry (the one that did not move)
                            // to reclamation.
                            unsafe {
                                (*leaf).set_drop_hint(pos as u8);
                                self.retire_node(leaf, guard);
                            }
                            return (Some(out), hit);
                        }
                        Err(observed) => {
                            // SAFETY: unpublished (the CAS failed).
                            unsafe { free_scratch(cache, block) };
                            if observed.ptr() == leaf && observed.marked() {
                                self.metrics.note_help();
                                obs::emit(EventKind::Help);
                                // SAFETY: record protected by `guard`.
                                let outcome = unsafe { self.cleanup(key, rec, guard) };
                                if outcome == CleanupOutcome::Abandoned {
                                    return (None, hit); // not yet linearized
                                }
                            }
                        }
                    }
                } else {
                    // Last entry of the block: the paper's protocol
                    // removes the whole leaf.
                    if chaos::hit(Point::DeleteInject) == Action::Abandon {
                        return (None, hit); // abandoned before linearizing
                    }
                    // Injection: flag the edge to the victim (line 73).
                    // This is the linearization point.
                    let clean = clean_edge(leaf);
                    match child_edge.compare_exchange(clean, clean.flagged(), arena) {
                        Ok(()) => {
                            obs::emit(EventKind::InjectFlag);
                            // SAFETY: leaf is immutable, guard-protected,
                            // and holds exactly one entry.
                            result = Some(read.take().expect("read used once")(unsafe {
                                &(*leaf).entry_vals()[0]
                            }));
                            target = leaf;
                            injecting = false;
                            // SAFETY: record protected by `guard`.
                            match unsafe { self.cleanup(key, rec, guard) } {
                                // Abandoned: the delete already linearized
                                // at the flag; leave the splice to helpers.
                                CleanupOutcome::Spliced | CleanupOutcome::Abandoned => {
                                    return (result, hit)
                                }
                                CleanupOutcome::Lost => {}
                            }
                        }
                        Err(observed) => {
                            if observed.ptr() == leaf && observed.marked() {
                                self.metrics.note_help();
                                obs::emit(EventKind::Help);
                                // SAFETY: record protected by `guard`.
                                let outcome = unsafe { self.cleanup(key, rec, guard) };
                                if outcome == CleanupOutcome::Abandoned {
                                    return (None, hit); // not yet linearized
                                }
                            }
                        }
                    }
                }
            } else {
                // Cleanup mode (lines 82–87): if the flagged leaf is no
                // longer on the access path, a helper already removed it.
                if rec.leaf != target {
                    return (result, hit);
                }
                // SAFETY: record protected by `guard`.
                match unsafe { self.cleanup(key, rec, guard) } {
                    CleanupOutcome::Spliced | CleanupOutcome::Abandoned => return (result, hit),
                    CleanupOutcome::Lost => {}
                }
            }
        }
    }

    /// Algorithm 4: tag the sibling edge, then splice at the ancestor.
    /// Invoked by the delete that owns the flag *and* by any operation
    /// helping it.
    ///
    /// On a won splice the record's `successor` is repointed at the
    /// hoisted survivor: `(ancestor → survivor)` is exactly the edge our
    /// CAS just installed, so it is the freshest possible local-restart
    /// anchor for the retry loops and the batch-op finger (it fails
    /// revalidation harmlessly if the survivor is a leaf or the edge
    /// moved again).
    ///
    /// # Safety
    ///
    /// `rec` must come from a seek under `guard`, still held.
    pub(crate) unsafe fn cleanup(
        &self,
        key: &K,
        rec: &mut SeekRecord<K, V>,
        guard: &R::Guard<'_>,
    ) -> CleanupOutcome {
        stats::record_cleanup();
        let arena = self.arena();
        let ancestor = rec.ancestor;
        let successor = rec.successor;
        let parent = rec.parent;

        // SAFETY (derefs below): all four record nodes are protected by
        // `guard`; even if already spliced out by another thread they
        // cannot have been freed.
        let successor_edge = unsafe { (*ancestor).child_for(key) };
        let (child_edge, sibling_edge) = unsafe { (*parent).child_and_sibling_for(key) };

        // Lines 103–105: if the edge to our leaf is not flagged, the
        // delete being helped flagged the *other* child; the roles swap
        // and our side is the one to hoist.
        let child_val = child_edge.load(arena);
        let sibling_edge = if !child_val.flag() {
            child_edge
        } else {
            sibling_edge
        };

        if chaos::hit(Point::Tag) == Action::Abandon {
            return CleanupOutcome::Abandoned;
        }
        // Line 106: tag the edge that will be hoisted. Unconditional and
        // idempotent — after this, neither child of `parent` can change,
        // so `parent` can never again be an injection point.
        sibling_edge.set_tag(self.tag_mode);
        obs::emit(EventKind::TagSibling);

        if chaos::hit(Point::Splice) == Action::Abandon {
            return CleanupOutcome::Abandoned;
        }
        // Lines 107–108: splice. The hoisted edge keeps its flag (its
        // head may itself be a leaf some delete already flagged; the flag
        // must survive the move so that delete can still be helped).
        // `Bug::DropFlagOnSplice` deliberately loses that copy.
        let sib = sibling_edge.load(arena);
        let keep_flag = sib.flag() && !chaos::bug_enabled(chaos::Bug::DropFlagOnSplice);
        match successor_edge.compare_exchange(
            clean_edge(successor),
            sib.with_marks(keep_flag, false),
            arena,
        ) {
            Ok(()) => {
                // We won the splice: everything that hung below
                // `successor`, except the hoisted survivor subtree, just
                // left the tree — retire it (exactly once, by us).
                if chaos::hit(Point::Retire) == Action::Abandon {
                    return CleanupOutcome::Spliced; // leak the chain
                }
                obs::emit(EventKind::Retire);
                // SAFETY: the detached region is frozen (every edge in it
                // is marked) and unreachable from the root.
                let chain_len = unsafe { self.retire_chain(successor, sib.ptr(), guard) };
                // `Splice` carries the chain length, which is only known
                // after the detached region has been walked — hence this
                // delete's `Retire` precedes its `Splice` in the trace.
                obs::emit(EventKind::Splice {
                    chain_len: chain_len.min(u32::MAX as u64) as u32,
                });
                // Repoint the record at the edge we just wrote (see the
                // method docs); the detached `successor`/`parent`/`leaf`
                // pointers stay guard-protected but are now stale. The
                // positional bounds (`rec.lo`/`hi`) stay valid verbatim:
                // they bound the *edge position* at `ancestor`, which the
                // splice did not move — only the subtree hanging there
                // changed.
                rec.successor = sib.ptr();
                CleanupOutcome::Spliced
            }
            Err(_) => CleanupOutcome::Lost,
        }
    }

    /// Retires the chain a successful splice detached: the subtree rooted
    /// at `from`, minus the subtree of the hoisted `survivor`. Returns
    /// the number of nodes retired.
    ///
    /// Recursion depth is bounded by the number of concurrent deletes
    /// whose victims lay on this access path (each tagged edge on the
    /// chain belongs to one), so it cannot overflow.
    ///
    /// # Safety
    ///
    /// Caller must be the thread whose splice CAS detached `from`, and
    /// must still hold `guard`.
    unsafe fn retire_chain(
        &self,
        from: *mut Node<K, V>,
        survivor: *mut Node<K, V>,
        guard: &R::Guard<'_>,
    ) -> u64 {
        let mut unlinked = 0;
        // SAFETY: forwarded contract.
        unsafe { self.retire_rec(from, survivor, guard, &mut unlinked) };
        stats::record_splice(unlinked);
        unlinked
    }

    unsafe fn retire_rec(
        &self,
        node: *mut Node<K, V>,
        survivor: *mut Node<K, V>,
        guard: &R::Guard<'_>,
        unlinked: &mut u64,
    ) {
        if node.is_null() || node == survivor {
            return;
        }
        let arena = self.arena();
        // SAFETY: nodes in the detached region are frozen; their edges
        // are immutable and the nodes are guard-protected.
        let left = unsafe { (*node).left.load(arena) }.ptr();
        let right = unsafe { (*node).right.load(arena) }.ptr();
        unsafe {
            self.retire_rec(left, survivor, guard, unlinked);
            self.retire_rec(right, survivor, guard, unlinked);
        }
        *unlinked += 1;
        stats::record_retire();
        // SAFETY: detached by our splice, retired exactly once (only the
        // splice winner walks this region). Spliced-out leaves keep the
        // default HINT_ALL: their entries never moved, so reclamation
        // drops all of them.
        unsafe { self.retire_node(node, guard) };
    }

    /// Hands one unlinked node to the reclaimer as a *recycle* deferral:
    /// after the grace period, drop whatever entries the node's drop hint
    /// says it still owns and return the slot to this tree's arena pool.
    /// Non-reclaiming schemes ([`Leaky`](nmbst_reclaim::Leaky)) drop the
    /// deferral uncalled, leaking the contents and leaving the slot
    /// parked in the arena — as those schemes intend.
    ///
    /// # Safety
    ///
    /// Same contract as
    /// [`RetireGuard::retire_deferred`]: `node` is unlinked, retired
    /// exactly once, its drop hint already set, and `guard` pins this
    /// tree's reclaimer.
    #[inline]
    unsafe fn retire_node(&self, node: *mut Node<K, V>, guard: &R::Guard<'_>) {
        // SAFETY: `recycle_deferred` releases exactly once and the scheme
        // proves the grace period before running it; the tree parked the
        // pool keepalive in the reclaimer at construction.
        unsafe { guard.retire_deferred(pool::recycle_deferred(node, &self.pool)) }
    }
}

/// Returns one unpublished scratch node to the cache: drops its routing
/// key (every scratch shell owns a fresh clone) but **no entries** — the
/// caller has either moved them out or left them owned by the still-live
/// block they were copied from.
///
/// # Safety
///
/// `node` must be unpublished (no CAS installed it), built through
/// `cache`'s pool, and its pending entry (if any) already moved out with
/// [`Node::take_entry`].
unsafe fn free_scratch<K, V>(cache: &mut NodeCache<'_>, node: *mut Node<K, V>) {
    // SAFETY: exclusively owned; HINT_NONE disowns every entry slot so
    // only the routing key is dropped.
    unsafe {
        (*node).set_drop_hint(HINT_NONE);
        node::drop_retired_contents(node);
        cache.free_shell(node);
    }
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, PoolConfig, TreeConfig};
    use nmbst_reclaim::{Ebr, Leaky};

    #[test]
    fn insert_then_contains() {
        let map: NmTreeMap<i64, i64, Leaky> = NmTreeMap::new();
        assert!(map.insert(10, 100));
        assert!(map.insert(5, 50));
        assert!(map.insert(15, 150));
        assert!(map.contains(&10));
        assert!(map.contains(&5));
        assert!(map.contains(&15));
        assert!(!map.contains(&7));
    }

    #[test]
    fn duplicate_insert_rejected_and_value_dropped() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let map: NmTreeMap<i64, D, Ebr> = NmTreeMap::new();
        assert!(map.insert(1, D(Arc::clone(&drops))));
        assert!(!map.insert(1, D(Arc::clone(&drops))));
        // The rejected value must have been dropped, the stored one not.
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(map);
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn remove_present_and_absent() {
        let map: NmTreeMap<i64, (), Leaky> = NmTreeMap::new();
        for k in [4, 2, 6, 1, 3, 5, 7] {
            assert!(map.insert(k, ()));
        }
        assert!(map.remove(&4));
        assert!(!map.remove(&4));
        assert!(!map.remove(&99));
        assert!(!map.contains(&4));
        for k in [2, 6, 1, 3, 5, 7] {
            assert!(map.contains(&k), "lost key {k}");
        }
    }

    #[test]
    fn remove_get_returns_value() {
        let map: NmTreeMap<i64, String, Ebr> = NmTreeMap::new();
        map.insert(1, "one".to_string());
        assert_eq!(map.remove_get(&1), Some("one".to_string()));
        assert_eq!(map.remove_get(&1), None);
    }

    #[test]
    fn reinsert_after_remove() {
        let map: NmTreeMap<i64, i64, Ebr> = NmTreeMap::new();
        for round in 0..5 {
            assert!(map.insert(42, round));
            assert_eq!(map.get(&42), Some(round));
            assert!(map.remove(&42));
            assert!(!map.contains(&42));
        }
    }

    #[test]
    fn delete_only_key_restores_empty_shape() {
        let mut map: NmTreeMap<i64, (), Ebr> = NmTreeMap::new();
        assert!(map.insert(9, ()));
        assert!(map.remove(&9));
        let shape = map.check_invariants().expect("invariants");
        assert_eq!(shape.user_keys, 0);
    }

    #[test]
    fn interleaved_single_thread_model_check() {
        // Deterministic pseudo-random op sequence vs a BTreeSet model.
        let mut model = std::collections::BTreeSet::new();
        let mut map: NmTreeMap<u64, (), Ebr> = NmTreeMap::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 64;
            match state % 3 {
                0 => assert_eq!(map.insert(key, ()), model.insert(key), "insert {key}"),
                1 => assert_eq!(map.remove(&key), model.remove(&key), "remove {key}"),
                _ => assert_eq!(map.contains(&key), model.contains(&key), "contains {key}"),
            }
        }
        let shape = map.check_invariants().expect("invariants");
        assert_eq!(shape.user_keys, model.len());
    }

    #[test]
    fn model_check_every_leaf_cap() {
        // The same op sequence must behave identically at every block
        // width — cap 1 exercises only the classic paths, cap 2 the
        // split, cap 8 the COW fill.
        for cap in [1usize, 2, 3, 8] {
            let mut model = std::collections::BTreeSet::new();
            let mut map: NmTreeMap<u64, (), Ebr> =
                NmTreeMap::with_config(TreeConfig::default().with_leaf_cap(cap));
            let mut state = 0xD1B54A32D192ED03u64;
            for _ in 0..4000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = (state >> 33) % 48;
                match state % 3 {
                    0 => assert_eq!(
                        map.insert(key, ()),
                        model.insert(key),
                        "cap {cap} ins {key}"
                    ),
                    1 => assert_eq!(map.remove(&key), model.remove(&key), "cap {cap} rm {key}"),
                    _ => assert_eq!(
                        map.contains(&key),
                        model.contains(&key),
                        "cap {cap} has {key}"
                    ),
                }
            }
            let shape = map.check_invariants().expect("invariants");
            assert_eq!(shape.user_keys, model.len(), "cap {cap}");
        }
    }

    #[test]
    fn cow_paths_work_without_pool_reuse() {
        // Capacity-0 pool: every free-list push overflows (abandon in
        // place) and every alloc bump-allocates; the COW churn must still
        // be correct.
        let map: NmTreeMap<u64, u64, Ebr> =
            NmTreeMap::with_config(TreeConfig::default().with_pool(PoolConfig::disabled()));
        for k in 0..200u64 {
            assert!(map.insert(k, k * 10));
        }
        for k in (0..200u64).step_by(2) {
            assert_eq!(map.remove_get(&k), Some(k * 10));
        }
        for k in 0..200u64 {
            assert_eq!(map.get(&k), (k % 2 == 1).then_some(k * 10));
        }
    }

    #[test]
    fn values_drop_once_through_block_churn() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicUsize>, u64);
        impl Clone for D {
            fn clone(&self) -> Self {
                D(Arc::clone(&self.0), self.1)
            }
        }
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let map: NmTreeMap<u64, D, Ebr> = NmTreeMap::new();
        const N: u64 = 64;
        for k in 0..N {
            assert!(map.insert(k, D(Arc::clone(&drops), k)));
        }
        // Remove half through the COW path (blocks stay multi-entry) and
        // check the payload identity survived the block copies.
        for k in 0..N / 2 {
            assert_eq!(map.remove_get(&k).map(|d| d.1), Some(k));
        }
        drop(map);
        // Each removed key drops twice (the `remove_get` clone plus the
        // stored original, reclaimed by the collector teardown); each
        // surviving key once (the live-tree teardown).
        let expect = (N / 2) as usize * 2 + (N / 2) as usize;
        assert_eq!(drops.load(Ordering::Relaxed), expect);
    }
}
