//! Optional `serde` support (`feature = "serde"`).
//!
//! Maps serialize as maps, sets as sequences, both in ascending key
//! order via the weakly consistent traversal — serialize under
//! quiescence (or accept a weakly consistent snapshot, like other
//! concurrent collections).

#![cfg(feature = "serde")]

use crate::{NmTreeMap, NmTreeSet};
use nmbst_reclaim::Reclaim;
use serde::de::{MapAccess, SeqAccess, Visitor};
use serde::ser::{SerializeMap, SerializeSeq};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::marker::PhantomData;

impl<K, V, R> Serialize for NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + Serialize + 'static,
    V: Send + Sync + Serialize + 'static,
    R: Reclaim,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(None)?;
        let mut error = None;
        self.for_each(|k, v| {
            if error.is_none() {
                if let Err(e) = map.serialize_entry(k, v) {
                    error = Some(e);
                }
            }
        });
        match error {
            Some(e) => Err(e),
            None => map.end(),
        }
    }
}

impl<'de, K, V, R> Deserialize<'de> for NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + Deserialize<'de> + 'static,
    V: Send + Sync + Deserialize<'de> + 'static,
    R: Reclaim,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        type Marker<K, V, R> = PhantomData<(K, V, fn() -> R)>;
        struct MapVisitor<K, V, R>(Marker<K, V, R>);
        impl<'de, K, V, R> Visitor<'de> for MapVisitor<K, V, R>
        where
            K: Ord + Clone + Send + Sync + Deserialize<'de> + 'static,
            V: Send + Sync + Deserialize<'de> + 'static,
            R: Reclaim,
        {
            type Value = NmTreeMap<K, V, R>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut access: A) -> Result<Self::Value, A::Error> {
                let map = NmTreeMap::new();
                while let Some((k, v)) = access.next_entry()? {
                    map.insert(k, v);
                }
                Ok(map)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<K, R> Serialize for NmTreeSet<K, R>
where
    K: Ord + Clone + Send + Sync + Serialize + 'static,
    R: Reclaim,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(None)?;
        let mut error = None;
        self.for_each(|k| {
            if error.is_none() {
                if let Err(e) = seq.serialize_element(k) {
                    error = Some(e);
                }
            }
        });
        match error {
            Some(e) => Err(e),
            None => seq.end(),
        }
    }
}

impl<'de, K, R> Deserialize<'de> for NmTreeSet<K, R>
where
    K: Ord + Clone + Send + Sync + Deserialize<'de> + 'static,
    R: Reclaim,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SetVisitor<K, R>(PhantomData<(K, fn() -> R)>);
        impl<'de, K, R> Visitor<'de> for SetVisitor<K, R>
        where
            K: Ord + Clone + Send + Sync + Deserialize<'de> + 'static,
            R: Reclaim,
        {
            type Value = NmTreeSet<K, R>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence of keys")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut access: A) -> Result<Self::Value, A::Error> {
                let set = NmTreeSet::new();
                while let Some(k) = access.next_element()? {
                    set.insert(k);
                }
                Ok(set)
            }
        }
        deserializer.deserialize_seq(SetVisitor(PhantomData))
    }
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, NmTreeSet};
    use nmbst_reclaim::Ebr;

    #[test]
    fn map_roundtrip_json() {
        let map: NmTreeMap<u32, String, Ebr> = (0..20).map(|k| (k, format!("v{k}"))).collect();
        let json = serde_json::to_string(&map).unwrap();
        let back: NmTreeMap<u32, String, Ebr> = serde_json::from_str(&json).unwrap();
        for k in 0..20 {
            assert_eq!(back.get(&k), Some(format!("v{k}")));
        }
        assert_eq!(back.count(), 20);
    }

    #[test]
    fn map_serializes_in_key_order() {
        let map: NmTreeMap<u32, u32, Ebr> = [(3, 30), (1, 10), (2, 20)].into_iter().collect();
        let json = serde_json::to_string(&map).unwrap();
        assert_eq!(json, r#"{"1":10,"2":20,"3":30}"#);
    }

    #[test]
    fn set_roundtrip_json() {
        let set: NmTreeSet<i64, Ebr> = [5, -3, 9, 0].into_iter().collect();
        let json = serde_json::to_string(&set).unwrap();
        assert_eq!(json, "[-3,0,5,9]");
        let mut back: NmTreeSet<i64, Ebr> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.keys(), vec![-3, 0, 5, 9]);
    }

    #[test]
    fn empty_collections() {
        let map: NmTreeMap<u8, u8, Ebr> = NmTreeMap::new();
        assert_eq!(serde_json::to_string(&map).unwrap(), "{}");
        let set: NmTreeSet<u8, Ebr> = NmTreeSet::new();
        assert_eq!(serde_json::to_string(&set).unwrap(), "[]");
        let back: NmTreeSet<u8, Ebr> = serde_json::from_str("[]").unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn duplicate_keys_in_input_keep_first() {
        let back: NmTreeSet<u8, Ebr> = serde_json::from_str("[1,1,2]").unwrap();
        assert_eq!(back.count(), 2);
    }
}
