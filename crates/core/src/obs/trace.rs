//! The flight recorder (`feature = "obs"`): per-thread lock-free event
//! rings.
//!
//! Design constraints, in order:
//!
//! 1. **Never perturb the schedule being recorded.** A recording thread
//!    writes only to its own ring — one relaxed `fetch_add` on the shared
//!    sequence counter, then three stores into a slot it exclusively
//!    owns. No locks, no allocation, no cross-thread stores.
//! 2. **Deterministic under the explorer.** Recorder state is
//!    capture-scoped, not process-global: each [`FlightRecorder`] owns
//!    its own sequence counter (starting at 0) and ring registry, so
//!    concurrently running tests cannot pollute each other's traces and
//!    the same explorer seed yields a byte-identical merged trace.
//! 3. **Readable while hot.** [`FlightRecorder::merged`] may run while
//!    threads still record; each slot is validated with a
//!    [`SeqCount`] and torn slots are skipped rather
//!    than spun on.
//!
//! Rings have fixed capacity: when full, the oldest events are
//! overwritten and counted in [`FlightRecorder::dropped`] — a flight
//! recorder keeps the *latest* window, which is the one that explains a
//! failure.

use super::EventKind;
use nmbst_sync::{SeqCount, SpinLock};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Events each per-thread ring retains before overwriting the oldest.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Packs an [`EventKind`] into one word: discriminant in the low byte,
/// the (only) argument in the bits above it.
fn encode(kind: EventKind) -> u64 {
    match kind {
        EventKind::SeekStart => 0,
        EventKind::LocalRestart => 1,
        EventKind::InjectFlag => 2,
        EventKind::TagSibling => 3,
        EventKind::Splice { chain_len } => 4 | (u64::from(chain_len) << 8),
        EventKind::Help => 5,
        EventKind::Retire => 6,
        EventKind::Repin => 7,
    }
}

fn decode(data: u64) -> EventKind {
    match data & 0xFF {
        0 => EventKind::SeekStart,
        1 => EventKind::LocalRestart,
        2 => EventKind::InjectFlag,
        3 => EventKind::TagSibling,
        4 => EventKind::Splice {
            chain_len: (data >> 8) as u32,
        },
        5 => EventKind::Help,
        6 => EventKind::Retire,
        _ => EventKind::Repin,
    }
}

/// One ring slot. `version` brackets writes so a concurrent reader can
/// tell a consistent `(seq, data)` pair from a torn one.
struct Slot {
    version: SeqCount,
    seq: AtomicU64,
    data: AtomicU64,
}

/// One thread's ring. Written only by the owning thread (enforced by
/// reaching it exclusively through thread-local state); read by anyone.
struct Ring {
    label: u32,
    /// Total events ever pushed; the write cursor is `head % capacity`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(label: u32, capacity: usize) -> Ring {
        Ring {
            label,
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    version: SeqCount::new(),
                    seq: AtomicU64::new(0),
                    data: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Owner-thread-only append.
    fn push(&self, seq: u64, kind: EventKind) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        slot.version.write_begin();
        slot.seq.store(seq, Ordering::Relaxed);
        slot.data.store(encode(kind), Ordering::Relaxed);
        slot.version.write_end();
        self.head.store(head + 1, Ordering::Release);
    }
}

struct Inner {
    /// Global (per-recorder) sequence counter. One relaxed `fetch_add`
    /// per event; each thread's subsequence is strictly monotonic, and
    /// sorting the merged trace by it reconstructs a total order
    /// consistent with every per-thread program order.
    seq: AtomicU64,
    capacity: usize,
    /// Every ring ever attached, in attach order. Locked only on attach
    /// and merge, never on the emit path.
    rings: SpinLock<Vec<Arc<Ring>>>,
}

thread_local! {
    /// The recorder(s) this thread is attached to, innermost last. A
    /// stack so tests can nest captures; [`emit`] records only into the
    /// innermost.
    static CURRENT: RefCell<Vec<(Arc<Inner>, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };
}

/// Records `kind` into the current thread's attached ring, if any.
///
/// This is the only entry point the tree calls. Cost when unattached:
/// one thread-local borrow and a branch.
#[inline]
pub(crate) fn emit(kind: EventKind) {
    CURRENT.with(|current| {
        if let Some((inner, ring)) = current.borrow().last() {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            ring.push(seq, kind);
        }
    });
}

/// This thread's position in its innermost attached ring (events
/// recorded so far), or `u64::MAX` when unattached. An armed latency
/// timer takes this at op start so a slow op can report exactly the
/// events recorded during it.
#[cfg(feature = "obs-latency")]
#[inline]
pub(crate) fn local_mark() -> u64 {
    CURRENT.with(|current| {
        current
            .borrow()
            .last()
            .map_or(u64::MAX, |(_, ring)| ring.head.load(Ordering::Relaxed))
    })
}

/// The event discriminants this thread recorded into its innermost ring
/// since `mark` (from [`local_mark`]), keeping the latest
/// [`SLOW_EVENTS`](super::slow::SLOW_EVENTS) when the op recorded more
/// (the tail of a retry storm is where the resolution is). Reading our
/// own ring is safe without validation: the owner is the only writer.
#[cfg(feature = "obs-latency")]
pub(crate) fn local_events_since(mark: u64) -> ([u8; super::slow::SLOW_EVENTS], u8) {
    let mut out = [0u8; super::slow::SLOW_EVENTS];
    let mut n = 0u8;
    if mark == u64::MAX {
        return (out, n);
    }
    CURRENT.with(|current| {
        if let Some((_, ring)) = current.borrow().last() {
            let head = ring.head.load(Ordering::Relaxed);
            let cap = ring.slots.len() as u64;
            let start = mark
                .max(head.saturating_sub(cap))
                .max(head.saturating_sub(out.len() as u64));
            for i in start..head {
                let slot = &ring.slots[(i % cap) as usize];
                out[usize::from(n)] = (slot.data.load(Ordering::Relaxed) & 0xFF) as u8;
                n += 1;
            }
        }
    });
    (out, n)
}

/// A capture-scoped flight recorder (see the [module docs](self)).
///
/// Cloning is cheap and shares the capture: clone one recorder into each
/// worker thread, [`attach`](FlightRecorder::attach) there, and read the
/// [`merged`](FlightRecorder::merged) trace from the driver.
///
/// # Examples
///
/// ```
/// use nmbst::obs::FlightRecorder;
/// use nmbst::NmTreeSet;
///
/// let set: NmTreeSet<u64> = NmTreeSet::new();
/// let rec = FlightRecorder::new();
/// {
///     let _attached = rec.attach(0);
///     set.insert(7);
///     set.remove(&7);
/// }
/// let trace = rec.merged();
/// assert!(!trace.is_empty());
/// // Per-thread sequence numbers are strictly monotonic.
/// assert!(trace.windows(2).all(|w| w[0].seq < w[1].seq));
/// ```
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl FlightRecorder {
    /// A recorder whose rings hold [`DEFAULT_CAPACITY`] events each.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder with explicit per-thread ring capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Inner {
                seq: AtomicU64::new(0),
                capacity: capacity.max(1),
                rings: SpinLock::new(Vec::new()),
            }),
        }
    }

    /// Attaches the current thread to this recorder under `label`
    /// (conventionally the worker's thread index): until the returned
    /// guard drops, every structural event the thread executes is
    /// recorded into a fresh ring. Attachments nest; the innermost wins.
    pub fn attach(&self, label: u32) -> RecorderGuard {
        let ring = Arc::new(Ring::new(label, self.inner.capacity));
        self.inner.rings.lock().push(Arc::clone(&ring));
        CURRENT.with(|current| {
            current.borrow_mut().push((Arc::clone(&self.inner), ring));
        });
        RecorderGuard {
            _not_send: PhantomData,
        }
    }

    /// All recorded events from every attached thread, merged and sorted
    /// by sequence number. Safe to call while threads still record:
    /// slots being overwritten at that moment are skipped.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<Ring>> = self.inner.rings.lock().clone();
        let mut events = Vec::new();
        for ring in rings {
            let head = ring.head.load(Ordering::Acquire);
            let cap = ring.slots.len() as u64;
            for i in head.saturating_sub(cap)..head {
                let slot = &ring.slots[(i % cap) as usize];
                let version = slot.version.raw();
                if version & 1 == 1 {
                    continue; // mid-write right now
                }
                let seq = slot.seq.load(Ordering::Relaxed);
                let data = slot.data.load(Ordering::Relaxed);
                if !slot.version.validate(version) {
                    continue; // overwritten while we read
                }
                events.push(TraceEvent {
                    seq,
                    thread: ring.label,
                    kind: decode(data),
                });
            }
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Events lost to ring overwrite across all threads.
    pub fn dropped(&self) -> u64 {
        self.inner
            .rings
            .lock()
            .iter()
            .map(|r| {
                r.head
                    .load(Ordering::Acquire)
                    .saturating_sub(r.slots.len() as u64)
            })
            .sum()
    }

    /// The merged trace rendered as text, one event per line — the
    /// postmortem artifact format (byte-identical for identical traces).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in self.merged() {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.inner.capacity)
            .field("rings", &self.inner.rings.lock().len())
            .field("seq", &self.inner.seq.load(Ordering::Relaxed))
            .finish()
    }
}

/// Detaches the thread from its innermost recorder on drop. `!Send`: it
/// manipulates the attaching thread's local state.
pub struct RecorderGuard {
    _not_send: PhantomData<*mut ()>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        CURRENT.with(|current| {
            current.borrow_mut().pop();
        });
    }
}

impl std::fmt::Debug for RecorderGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RecorderGuard { .. }")
    }
}

/// One recorded event: where ([`thread`](TraceEvent::thread)), when
/// ([`seq`](TraceEvent::seq)), what ([`kind`](TraceEvent::kind)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Recorder-wide sequence number (per-thread subsequences are
    /// strictly monotonic).
    pub seq: u64,
    /// The label the recording thread attached under.
    pub thread: u32,
    /// The structural event.
    pub kind: EventKind,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{:06} t{} {}", self.seq, self.thread, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for kind in [
            EventKind::SeekStart,
            EventKind::LocalRestart,
            EventKind::InjectFlag,
            EventKind::TagSibling,
            EventKind::Splice { chain_len: 0 },
            EventKind::Splice {
                chain_len: u32::MAX,
            },
            EventKind::Help,
            EventKind::Retire,
            EventKind::Repin,
        ] {
            assert_eq!(decode(encode(kind)), kind);
        }
    }

    #[test]
    fn unattached_emit_is_a_no_op() {
        emit(EventKind::SeekStart);
        let rec = FlightRecorder::new();
        assert!(rec.merged().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(4);
        {
            let _g = rec.attach(9);
            for _ in 0..10 {
                emit(EventKind::Help);
            }
        }
        assert_eq!(rec.dropped(), 6);
        let trace = rec.merged();
        assert_eq!(trace.len(), 4);
        // The latest window survives: seqs 6..=9.
        assert_eq!(trace.first().unwrap().seq, 6);
        assert_eq!(trace.last().unwrap().seq, 9);
        assert!(trace.iter().all(|e| e.thread == 9));
    }

    #[test]
    fn captures_nest_and_do_not_leak_across_recorders() {
        let outer = FlightRecorder::new();
        let inner = FlightRecorder::new();
        let _o = outer.attach(0);
        emit(EventKind::SeekStart);
        {
            let _i = inner.attach(1);
            emit(EventKind::Help);
        }
        emit(EventKind::Retire);
        let outer_trace = outer.merged();
        assert_eq!(outer_trace.len(), 2);
        assert!(matches!(outer_trace[0].kind, EventKind::SeekStart));
        assert!(matches!(outer_trace[1].kind, EventKind::Retire));
        let inner_trace = inner.merged();
        assert_eq!(inner_trace.len(), 1);
        assert!(matches!(inner_trace[0].kind, EventKind::Help));
        // Each recorder numbers from zero, independently.
        assert_eq!(inner_trace[0].seq, 0);
    }

    #[test]
    fn merged_orders_across_threads() {
        let rec = FlightRecorder::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let rec = rec.clone();
                s.spawn(move || {
                    let _g = rec.attach(t);
                    for _ in 0..100 {
                        emit(EventKind::SeekStart);
                    }
                });
            }
        });
        let trace = rec.merged();
        assert_eq!(trace.len(), 400);
        // The shared counter hands out unique seqs; sorted means strictly
        // increasing, and each thread's subsequence is monotonic by
        // construction.
        assert!(trace.windows(2).all(|w| w[0].seq < w[1].seq));
        for t in 0..4 {
            assert_eq!(trace.iter().filter(|e| e.thread == t).count(), 100);
        }
    }
}
