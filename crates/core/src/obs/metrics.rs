//! The always-on metrics facade: sharded relaxed counters + gauges,
//! and (with `feature = "obs-latency"`, default on) sampled per-op-type
//! latency histograms plus slow-op capture.
//!
//! Counter writes must not create the cross-core cache-line traffic the
//! tree itself avoids, so counts live in [`SHARDS`] cache-padded shards;
//! each thread is assigned a shard round-robin on first use and bumps it
//! with relaxed `fetch_add`s. Reads ([`Metrics::snapshot`]) sum the
//! shards — exact once writers are quiescent, racy-but-monotonic while
//! they are not, which is the usual scrape contract.
//!
//! Latency recording follows the same cost discipline at a second
//! remove: a tree op costs ~100 ns while a clock read costs ~20 ns, so
//! timing *every* op would blow the ≤3% observability budget several
//! times over. Point ops are therefore **sampled** — a thread-local
//! tick arms a timer every `2^sample_shift`-th call (see
//! [`LatencyConfig`]) — while batch and range calls, which amortize a
//! clock pair over many keys, are timed on every call. Handles buffer
//! their sampled durations in plain fields ([`PendingLat`]) and flush
//! them into the shared [`ConcurrentHistogram`]s on re-pin, exactly
//! like their op counters. Ops that cross
//! [`LatencyConfig::slow_op_ns`] additionally deposit a [`SlowOp`]
//! record (with the flight-recorder event chain, when `feature = "obs"`
//! has a recorder attached) into a lock-free [`SlowRing`].

use nmbst_reclaim::{PoolStats, ReclaimGauges};
use nmbst_sync::CachePadded;
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use super::hist::LatencySnapshot;
use super::slow::SlowOp;
#[cfg(feature = "obs-latency")]
use super::{hist::ConcurrentHistogram, slow::SlowRing, OpClass};

/// Number of counter shards. More than the container's typical core
/// count so that threads rarely share a line even under round-robin
/// assignment; small enough that snapshot sums stay trivial.
const SHARDS: usize = 8;

/// Buckets in the descent-depth histogram. Power-of-two buckets: bucket
/// `b` counts descents that touched `2^(b-1) ..= 2^b - 1` nodes (bucket
/// 0 is the degenerate zero-node descent), saturating in the last
/// bucket, so 16 buckets cover any depth a 2³⁰-slot arena can produce.
pub const DEPTH_BUCKETS: usize = 16;

/// The histogram bucket a given descent depth lands in: the bit length
/// of `depth`, saturated to the last bucket.
#[inline]
fn depth_bucket(depth: u64) -> usize {
    ((u64::BITS - depth.leading_zeros()) as usize).min(DEPTH_BUCKETS - 1)
}

/// How latency recording behaves on a tree (`TreeConfig::lat`).
///
/// Runtime knobs, deliberately separate from the `obs-latency` cargo
/// feature: the feature compiles the recording sites (and the per-tree
/// histogram memory) out entirely, while this config lets one binary
/// A/B the cost or retune the threshold without rebuilding — which is
/// exactly what the perf harness's overhead gate does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Master switch. Off: every op pays one field load + branch.
    pub enabled: bool,
    /// Point ops (get/insert/remove) are timed once every
    /// `2^sample_shift` calls per thread (0 = every call — useful in
    /// tests, too hot for production). Batch/range calls ignore this
    /// and are always timed: one clock pair amortized over the whole
    /// call. Default 6 (1 in 64), which keeps the measured overhead
    /// comfortably inside the ≤3% budget.
    pub sample_shift: u32,
    /// Sampled ops (and every batch/range call) whose duration reaches
    /// this many nanoseconds deposit a [`SlowOp`] into the tree's slow
    /// ring. 0 disables capture. Default 1 ms — pathological for a
    /// sub-microsecond tree op.
    pub slow_op_ns: u64,
}

impl LatencyConfig {
    /// Recording disabled (the config the perf A/B's "off" arm uses).
    pub fn disabled() -> Self {
        LatencyConfig {
            enabled: false,
            ..LatencyConfig::default()
        }
    }

    /// Returns the config with the point-op sampling period set to
    /// `2^shift` (clamped to 31).
    pub fn with_sample_shift(mut self, shift: u32) -> Self {
        self.sample_shift = shift.min(31);
        self
    }

    /// Returns the config with the slow-op threshold set (0 = off).
    pub fn with_slow_op_ns(mut self, ns: u64) -> Self {
        self.slow_op_ns = ns;
        self
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            enabled: true,
            sample_shift: 6,
            slow_op_ns: 1_000_000,
        }
    }
}

/// One shard of operation counters. All bumps are relaxed: counts have
/// no ordering role, they only need to add up.
///
/// Counters are split by *outcome*, not aggregated by call, so every
/// operation costs exactly one `fetch_add` (`inserts` = `inserted` +
/// `insert_dup`, summed at snapshot time, never on the hot path).
#[derive(Default)]
struct Shard {
    searches: AtomicU64,
    inserted: AtomicU64,
    insert_dup: AtomicU64,
    removed: AtomicU64,
    remove_miss: AtomicU64,
    helps: AtomicU64,
    finger_hits: AtomicU64,
    finger_misses: AtomicU64,
    /// Power-of-two histogram of nodes touched per modify-path descent
    /// (see [`DEPTH_BUCKETS`]), plus the running sum for averages. Lives
    /// in the shard so the per-seek bump shares the line the op counter
    /// bump already owns.
    depth_hist: [AtomicU64; DEPTH_BUCKETS],
    depth_sum: AtomicU64,
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    /// Const-initialized `Cell` (not a lazy initializer) so the per-op
    /// access compiles to a plain TLS load; `usize::MAX` = unassigned.
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[cfg(feature = "obs-latency")]
thread_local! {
    /// Per-thread sampling tick for latency timers (see
    /// [`LatencyConfig::sample_shift`]). Shared across trees: sampling
    /// needs no per-tree phase, only the right long-run rate.
    static LAT_TICK: Cell<u32> = const { Cell::new(0) };
}

/// This thread's counter-shard index (round-robin assigned on first
/// use) — shared with the concurrent latency histograms so a recording
/// thread keeps bumping lines it already owns.
#[inline]
pub(crate) fn my_shard() -> usize {
    MY_SHARD.with(|s| {
        let idx = s.get();
        if idx != usize::MAX {
            idx
        } else {
            let assigned = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(assigned);
            assigned
        }
    })
}

/// The per-tree latency recording state: one concurrent histogram per
/// op class plus the slow-op ring. Only compiled (and only allocated)
/// with `feature = "obs-latency"`.
#[cfg(feature = "obs-latency")]
struct LatencyState {
    config: LatencyConfig,
    /// `2^sample_shift - 1`, cached at construction so the per-op
    /// sampling test is a single AND, not a shift+clamp.
    sample_mask: u32,
    hists: [ConcurrentHistogram; OpClass::COUNT],
    slow: SlowRing,
}

/// An armed-or-idle latency timer handed out by [`Metrics::op_timer`] /
/// [`Metrics::call_timer`] and consumed by the `op_finish` family.
/// Without `feature = "obs-latency"` it is a zero-sized token and every
/// method on it is an empty inline.
#[cfg(feature = "obs-latency")]
#[derive(Clone, Copy)]
pub(crate) struct LatTimer {
    t0: Option<std::time::Instant>,
    /// Flight-recorder ring position at arm time, so a slow op can
    /// report exactly the events recorded during it.
    #[cfg(feature = "obs")]
    mark: u64,
}

#[cfg(feature = "obs-latency")]
impl LatTimer {
    #[inline]
    fn idle() -> Self {
        LatTimer {
            t0: None,
            #[cfg(feature = "obs")]
            mark: u64::MAX,
        }
    }

    #[inline]
    fn armed() -> Self {
        LatTimer {
            t0: Some(std::time::Instant::now()),
            #[cfg(feature = "obs")]
            mark: super::trace::local_mark(),
        }
    }
}

/// See the `obs-latency` variant; this is the compiled-out token.
#[cfg(not(feature = "obs-latency"))]
#[derive(Clone, Copy)]
pub(crate) struct LatTimer;

/// Sampled `(op class, duration)` pairs a handle buffers in plain
/// fields between guard refreshes, flushed into the shared histograms
/// on re-pin/unpin/drop — the latency twin of [`PendingOps`]. Fixed
/// capacity: at the default 1-in-64 sampling and 64-op re-pin budget a
/// window yields ~1 sample, so 8 slots absorb even a forced
/// every-op-sampled test loop between organic flushes.
#[cfg(feature = "obs-latency")]
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PendingLat {
    buf: [(u8, u64); Self::CAP],
    len: u8,
    /// The owning handle's sampling tick (see
    /// [`Metrics::op_timer_buffered`]) — handle ops sample off this
    /// plain field rather than the thread-local the plain API uses.
    tick: u32,
}

#[cfg(feature = "obs-latency")]
impl PendingLat {
    const CAP: usize = 8;

    /// Appends a sample; false when full (caller flushes and retries).
    #[inline]
    fn push(&mut self, class: u8, ns: u64) -> bool {
        let i = usize::from(self.len);
        if i >= Self::CAP {
            return false;
        }
        self.buf[i] = (class, ns);
        self.len += 1;
        true
    }
}

/// See the `obs-latency` variant; this is the compiled-out token.
#[cfg(not(feature = "obs-latency"))]
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PendingLat;

/// Per-tree metrics state, owned by `NmTreeMap`.
pub(crate) struct Metrics {
    shards: [CachePadded<Shard>; SHARDS],
    /// Deepest access path any modify-path seek observed (leaf depth in
    /// edges below the sentinel pair). Racy max: updated with a relaxed
    /// load-then-`fetch_max` only when a new maximum is seen.
    max_depth: AtomicU64,
    #[cfg(feature = "obs-latency")]
    lat: LatencyState,
}

impl Metrics {
    pub(crate) fn new(lat: LatencyConfig) -> Self {
        #[cfg(not(feature = "obs-latency"))]
        let _ = lat;
        Metrics {
            shards: Default::default(),
            max_depth: AtomicU64::new(0),
            #[cfg(feature = "obs-latency")]
            lat: LatencyState {
                config: lat,
                sample_mask: (1u32 << lat.sample_shift.min(31)) - 1,
                hists: Default::default(),
                slow: SlowRing::new(super::slow::TREE_SLOW_CAP),
            },
        }
    }

    #[inline]
    fn shard(&self) -> &Shard {
        &self.shards[my_shard()]
    }

    #[inline]
    pub(crate) fn note_search(&self) {
        self.shard().searches.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn note_insert(&self, success: bool) {
        let shard = self.shard();
        let counter = if success {
            &shard.inserted
        } else {
            &shard.insert_dup
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn note_remove(&self, success: bool) {
        let shard = self.shard();
        let counter = if success {
            &shard.removed
        } else {
            &shard.remove_miss
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn note_help(&self) {
        self.shard().helps.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a new observed access-path depth into the max gauge and the
    /// sharded power-of-two histogram. The max update's common case (not
    /// a new maximum) is a single relaxed load; the histogram costs two
    /// relaxed `fetch_add`s on this thread's shard — the line the op
    /// counter bump for the same operation already owns.
    #[inline]
    pub(crate) fn note_depth(&self, depth: u64) {
        if depth > self.max_depth.load(Ordering::Relaxed) {
            self.max_depth.fetch_max(depth, Ordering::Relaxed);
        }
        let shard = self.shard();
        shard.depth_hist[depth_bucket(depth)].fetch_add(1, Ordering::Relaxed);
        shard.depth_sum.fetch_add(depth, Ordering::Relaxed);
    }

    /// Arms a sampled point-op timer: idle unless recording is enabled
    /// and this thread's tick hits the sampling period. The unsampled
    /// path costs one field load, one TLS bump, and a branch.
    #[cfg(feature = "obs-latency")]
    #[inline]
    pub(crate) fn op_timer(&self) -> LatTimer {
        if !self.lat.config.enabled {
            return LatTimer::idle();
        }
        let mask = self.lat.sample_mask;
        let sampled = LAT_TICK.with(|c| {
            let v = c.get().wrapping_add(1);
            c.set(v);
            v & mask == 0
        });
        if sampled {
            LatTimer::armed()
        } else {
            LatTimer::idle()
        }
    }

    /// The handle-op twin of [`op_timer`](Metrics::op_timer): the
    /// sampling tick lives in the handle's [`PendingLat`] (a plain
    /// field the handle already owns) instead of thread-local storage,
    /// so the unsampled path is a load, an add, and a branch on memory
    /// that's already hot — handles are the throughput-critical front
    /// end, and the ≤3% budget is measured through them.
    #[cfg(feature = "obs-latency")]
    #[inline]
    pub(crate) fn op_timer_buffered(&self, buf: &mut PendingLat) -> LatTimer {
        if !self.lat.config.enabled {
            return LatTimer::idle();
        }
        buf.tick = buf.tick.wrapping_add(1);
        if buf.tick & self.lat.sample_mask == 0 {
            LatTimer::armed()
        } else {
            LatTimer::idle()
        }
    }

    /// Arms an unsampled timer for whole batch/range calls, where one
    /// clock pair amortizes over many keys.
    #[cfg(feature = "obs-latency")]
    #[inline]
    pub(crate) fn call_timer(&self) -> LatTimer {
        if self.lat.config.enabled {
            LatTimer::armed()
        } else {
            LatTimer::idle()
        }
    }

    /// Finishes a timer directly into the shared histograms (the plain
    /// API path, and batch/range calls).
    #[cfg(feature = "obs-latency")]
    #[inline]
    pub(crate) fn op_finish(&self, class: OpClass, t: LatTimer) {
        if let Some(t0) = t.t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.lat.hists[class as usize].record(ns);
            self.check_slow(class, ns, &t);
        }
    }

    /// Finishes a timer into a handle's [`PendingLat`] buffer (flushed
    /// on re-pin, like the op counters). Slow-op detection still
    /// happens immediately — a 1 ms outlier should not wait for a
    /// flush to become visible.
    #[cfg(feature = "obs-latency")]
    #[inline]
    pub(crate) fn op_finish_buffered(&self, class: OpClass, t: LatTimer, buf: &mut PendingLat) {
        if let Some(t0) = t.t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.check_slow(class, ns, &t);
            if !buf.push(class as u8, ns) {
                self.flush_pending_lat(buf);
                let _ = buf.push(class as u8, ns);
            }
        }
    }

    /// Drains a handle's buffered latency samples into the shared
    /// histograms.
    #[cfg(feature = "obs-latency")]
    pub(crate) fn flush_pending_lat(&self, buf: &mut PendingLat) {
        for &(class, ns) in &buf.buf[..usize::from(buf.len)] {
            self.lat.hists[usize::from(class).min(OpClass::COUNT - 1)].record(ns);
        }
        buf.len = 0;
    }

    #[cfg(feature = "obs-latency")]
    #[inline]
    fn check_slow(&self, class: OpClass, ns: u64, t: &LatTimer) {
        let thr = self.lat.config.slow_op_ns;
        if thr != 0 && ns >= thr {
            self.push_slow(class, ns, t);
        }
    }

    /// Deposits a slow-op record, attaching the flight-recorder event
    /// chain for the op when a recorder is active on this thread.
    #[cfg(feature = "obs-latency")]
    #[cold]
    fn push_slow(&self, class: OpClass, ns: u64, t: &LatTimer) {
        #[cfg(feature = "obs")]
        let (events, n_events) = super::trace::local_events_since(t.mark);
        #[cfg(not(feature = "obs"))]
        let (events, n_events) = {
            let _ = t;
            ([0u8; super::slow::SLOW_EVENTS], 0u8)
        };
        self.lat.slow.push(SlowOp {
            kind: class as u8,
            origin: 0,
            n_events,
            key: 0,
            ns,
            events,
        });
    }

    // Compiled-out latency recording: zero-sized timers, empty inlines.
    #[cfg(not(feature = "obs-latency"))]
    #[inline(always)]
    pub(crate) fn op_timer(&self) -> LatTimer {
        LatTimer
    }

    #[cfg(not(feature = "obs-latency"))]
    #[inline(always)]
    pub(crate) fn op_timer_buffered(&self, buf: &mut PendingLat) -> LatTimer {
        let _ = buf;
        LatTimer
    }

    #[cfg(not(feature = "obs-latency"))]
    #[inline(always)]
    pub(crate) fn call_timer(&self) -> LatTimer {
        LatTimer
    }

    #[cfg(not(feature = "obs-latency"))]
    #[inline(always)]
    pub(crate) fn op_finish(&self, class: super::OpClass, t: LatTimer) {
        let _ = (class, t);
    }

    #[cfg(not(feature = "obs-latency"))]
    #[inline(always)]
    pub(crate) fn op_finish_buffered(
        &self,
        class: super::OpClass,
        t: LatTimer,
        buf: &mut PendingLat,
    ) {
        let _ = (class, t, buf);
    }

    #[cfg(not(feature = "obs-latency"))]
    #[inline(always)]
    pub(crate) fn flush_pending_lat(&self, buf: &mut PendingLat) {
        let _ = buf;
    }

    /// Adds a handle's batched counts in one pass (see [`PendingOps`]).
    pub(crate) fn add_pending(&self, p: &PendingOps) {
        if p.is_empty() {
            return;
        }
        let shard = self.shard();
        shard.searches.fetch_add(p.searches, Ordering::Relaxed);
        shard.inserted.fetch_add(p.inserted, Ordering::Relaxed);
        shard
            .insert_dup
            .fetch_add(p.inserts - p.inserted, Ordering::Relaxed);
        shard.removed.fetch_add(p.removed, Ordering::Relaxed);
        shard
            .remove_miss
            .fetch_add(p.removes - p.removed, Ordering::Relaxed);
        shard
            .finger_hits
            .fetch_add(p.finger_hits, Ordering::Relaxed);
        shard
            .finger_misses
            .fetch_add(p.finger_misses, Ordering::Relaxed);
    }

    /// Sums the shards and folds in the reclaimer's gauges and the node
    /// pool's stats (`None` when the tree runs with the pool off — the
    /// snapshot then reports all-zero pool fields).
    pub(crate) fn snapshot(
        &self,
        reclaim: ReclaimGauges,
        pool: Option<PoolStats>,
    ) -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            max_depth: self.max_depth.load(Ordering::Relaxed),
            reclaim,
            pool: pool.unwrap_or_default(),
            ..MetricsSnapshot::default()
        };
        for shard in &self.shards {
            s.searches += shard.searches.load(Ordering::Relaxed);
            s.inserted += shard.inserted.load(Ordering::Relaxed);
            s.inserts += shard.insert_dup.load(Ordering::Relaxed);
            s.removed += shard.removed.load(Ordering::Relaxed);
            s.removes += shard.remove_miss.load(Ordering::Relaxed);
            s.helps += shard.helps.load(Ordering::Relaxed);
            s.finger_hits += shard.finger_hits.load(Ordering::Relaxed);
            s.finger_misses += shard.finger_misses.load(Ordering::Relaxed);
            for (dst, src) in s.depth_hist.iter_mut().zip(shard.depth_hist.iter()) {
                *dst += src.load(Ordering::Relaxed);
            }
            s.depth_sum += shard.depth_sum.load(Ordering::Relaxed);
        }
        // The shards store outcomes; the snapshot reports call totals.
        s.inserts += s.inserted;
        s.removes += s.removed;
        s.size_estimate = s.inserted as i64 - s.removed as i64;
        #[cfg(feature = "obs-latency")]
        {
            s.latency = LatencySnapshot {
                get: self.lat.hists[OpClass::Get as usize].snapshot(),
                insert: self.lat.hists[OpClass::Insert as usize].snapshot(),
                remove: self.lat.hists[OpClass::Remove as usize].snapshot(),
                batch: self.lat.hists[OpClass::Batch as usize].snapshot(),
                range: self.lat.hists[OpClass::Range as usize].snapshot(),
            };
            s.slow_ops = self.lat.slow.snapshot();
        }
        s
    }
}

/// Operation counts a [`MapHandle`](crate::MapHandle) batches in plain
/// (non-atomic) fields between guard refreshes, flushed into the shards
/// on re-pin, unpin, and drop. This is what keeps the metrics facade off
/// the handle's per-op critical path entirely.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PendingOps {
    pub(crate) searches: u64,
    pub(crate) inserts: u64,
    pub(crate) inserted: u64,
    pub(crate) removes: u64,
    pub(crate) removed: u64,
    pub(crate) finger_hits: u64,
    pub(crate) finger_misses: u64,
}

impl PendingOps {
    fn is_empty(&self) -> bool {
        self.searches == 0
            && self.inserts == 0
            && self.removes == 0
            && self.finger_hits == 0
            && self.finger_misses == 0
    }

    pub(crate) fn clear(&mut self) {
        *self = PendingOps::default();
    }
}

/// Serving-tier connection gauges, folded into a [`MetricsSnapshot`] by
/// front ends that own connections (the TCP server's per-worker
/// reactors). Trees themselves never set these — they default to zero —
/// but carrying them on the snapshot lets the server reuse the metrics
/// merge/exposition pipeline (JSON + Prometheus + validator) instead of
/// inventing a parallel one.
///
/// `open_connections`, `read_paused_connections`, and
/// `write_buffered_bytes` are point-in-time gauges;
/// `backpressure_events` is a monotonic counter of read-pause
/// transitions (a connection entering the paused state counts once per
/// entry, not per byte). All four are *summed* by
/// [`MetricsSnapshot::merge`]: each worker owns disjoint connections, so
/// the aggregate is the fleet total.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeGauges {
    /// Connections currently registered with a reactor.
    pub open_connections: u64,
    /// Connections whose reads are paused by write-buffer backpressure.
    pub read_paused_connections: u64,
    /// Bytes sitting in not-yet-flushed per-connection write buffers.
    pub write_buffered_bytes: u64,
    /// Times any connection transitioned into the read-paused state.
    pub backpressure_events: u64,
}

/// A point-in-time view of one tree's metrics, produced by
/// [`NmTreeMap::metrics`](crate::NmTreeMap::metrics).
///
/// Counters are monotonic over the tree's lifetime; gauges are racy
/// point samples. `searches`/`inserts`/`removes` count *calls*;
/// `inserted`/`removed` count the calls that changed the key set, so
/// `inserted - removed` estimates the live key count (exact once writers
/// are quiescent). The latency histograms carry the sampled per-op-type
/// distributions (see [`LatencyConfig`]); `slow_ops` is the current
/// window of threshold-crossing op records.
///
/// # Examples
///
/// ```
/// use nmbst::NmTreeSet;
///
/// let set: NmTreeSet<u64> = NmTreeSet::new();
/// set.insert(1);
/// set.insert(2);
/// set.remove(&1);
/// let m = set.metrics();
/// assert_eq!(m.inserts, 2);
/// assert_eq!(m.size_estimate, 1);
/// assert!(m.to_prometheus().contains("nmbst_size_estimate 1"));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `contains`/`get`/`with_value` calls.
    pub searches: u64,
    /// `insert` calls (successful or duplicate-rejected).
    pub inserts: u64,
    /// `insert` calls that added a key.
    pub inserted: u64,
    /// `remove`/`remove_get` calls (successful or key-absent).
    pub removes: u64,
    /// `remove` calls that deleted a key.
    pub removed: u64,
    /// Times an operation helped a conflicting delete's cleanup instead
    /// of progressing its own work.
    pub helps: u64,
    /// Batch ops whose finger anchor revalidated: the descent started
    /// from the previous op's seek record instead of the root.
    pub finger_hits: u64,
    /// Batch ops that fell back to a full root descent (first op of a
    /// batch, stale anchor, or anchor's successor was a leaf).
    pub finger_misses: u64,
    /// `inserted - removed`: live key count, exact at quiescence.
    pub size_estimate: i64,
    /// Deepest access path observed by any modify-path seek (nodes
    /// touched below the sentinel pair, the fat leaf *block* counting as
    /// one node; 0 until the first modify op).
    pub max_depth: u64,
    /// Power-of-two histogram of nodes touched per modify-path descent:
    /// bucket `b` counts descents of depth `2^(b-1) ..= 2^b - 1` (bucket
    /// 0 holds the degenerate zero-node case, the last bucket
    /// saturates). This is the production-observable form of the
    /// fat-leaf miss-reduction claim: shrinking depth moves mass into
    /// lower buckets.
    pub depth_hist: [u64; DEPTH_BUCKETS],
    /// Sum of all observed descent depths (`depth_sum / modify ops` =
    /// mean nodes touched per descent).
    pub depth_sum: u64,
    /// Sampled per-op-type latency histograms (all empty when
    /// `feature = "obs-latency"` is off or recording is disabled).
    pub latency: LatencySnapshot,
    /// The latest window of slow-op records (ops that crossed
    /// [`LatencyConfig::slow_op_ns`]); oldest first from a single tree,
    /// slowest first after [`merge`](MetricsSnapshot::merge).
    pub slow_ops: Vec<SlowOp>,
    /// Reclamation health at snapshot time (see
    /// [`ReclaimGauges`]); all zeros under schemes
    /// without deferred state, like `Leaky`.
    pub reclaim: ReclaimGauges,
    /// Node-pool hit/recycle stats at snapshot time (see
    /// [`PoolStats`]); all zeros when the tree runs with the pool
    /// disabled. `hits`/`misses` are flushed from handles on re-pin and
    /// drop, so mid-loop snapshots may lag a handle's batched counts.
    pub pool: PoolStats,
    /// Serving-tier connection/backpressure gauges (see
    /// [`ServeGauges`]); all zeros on snapshots taken from a bare tree —
    /// only connection-owning front ends populate them.
    pub serve: ServeGauges,
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one, producing the aggregate view
    /// a sharded front end (e.g. `ShardedMap::metrics`) reports for N
    /// independent trees.
    ///
    /// Operation counters, `size_estimate`, pool counters, serve gauges
    /// (workers own disjoint connections), the latency histograms (slot
    /// counts and sums add exactly), and the retired backlog are *sums*; `max_depth`, per-histogram maxima, the
    /// reclaim epoch, and the epoch lag are *maxima* (each shard owns an
    /// independent reclaimer, so the worst shard is the health signal).
    /// `pinned_threads` is summed per shard — a thread pinned in several
    /// shards at once counts once per shard. Slow-op records
    /// concatenate, slowest first, capped at the per-tree ring size.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.searches += other.searches;
        self.inserts += other.inserts;
        self.inserted += other.inserted;
        self.removes += other.removes;
        self.removed += other.removed;
        self.helps += other.helps;
        self.finger_hits += other.finger_hits;
        self.finger_misses += other.finger_misses;
        self.size_estimate += other.size_estimate;
        self.max_depth = self.max_depth.max(other.max_depth);
        for (dst, src) in self.depth_hist.iter_mut().zip(other.depth_hist.iter()) {
            *dst += src;
        }
        self.depth_sum += other.depth_sum;
        self.latency.merge(&other.latency);
        self.slow_ops.extend_from_slice(&other.slow_ops);
        self.slow_ops.sort_by_key(|r| std::cmp::Reverse(r.ns));
        self.slow_ops.truncate(super::slow::TREE_SLOW_CAP);
        self.reclaim.epoch = self.reclaim.epoch.max(other.reclaim.epoch);
        self.reclaim.epoch_lag = self.reclaim.epoch_lag.max(other.reclaim.epoch_lag);
        self.reclaim.pinned_threads += other.reclaim.pinned_threads;
        self.reclaim.retired_backlog += other.reclaim.retired_backlog;
        self.pool.hits += other.pool.hits;
        self.pool.misses += other.pool.misses;
        self.pool.recycled += other.pool.recycled;
        self.pool.dropped += other.pool.dropped;
        self.pool.len += other.pool.len;
        self.pool.capacity += other.pool.capacity;
        self.serve.open_connections += other.serve.open_connections;
        self.serve.read_paused_connections += other.serve.read_paused_connections;
        self.serve.write_buffered_bytes += other.serve.write_buffered_bytes;
        self.serve.backpressure_events += other.serve.backpressure_events;
    }

    /// The snapshot as one flat JSON object (fixed key order, no
    /// dependencies — the same hand-rolled dialect as the bench schema).
    /// Latency histograms render as per-op-type summary objects
    /// (`{count, sum, max, p50, p99, p999}`, percentiles computed from
    /// the full-resolution slots); `slow_ops` as the captured count.
    pub fn to_json(&self) -> String {
        let depth_hist = self
            .depth_hist
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let latency = self
            .latency
            .by_class()
            .iter()
            .map(|(label, h)| format!("\"{label}\":{}", h.summary_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"searches\":{},\"inserts\":{},\"inserted\":{},",
                "\"removes\":{},\"removed\":{},\"helps\":{},",
                "\"finger_hits\":{},\"finger_misses\":{},",
                "\"size_estimate\":{},\"max_depth\":{},",
                "\"depth_hist\":[{}],\"depth_sum\":{},",
                "\"latency\":{{{}}},\"slow_ops\":{},",
                "\"reclaim_epoch\":{},\"reclaim_epoch_lag\":{},",
                "\"reclaim_pinned_threads\":{},\"reclaim_retired_backlog\":{},",
                "\"pool_hits\":{},\"pool_misses\":{},",
                "\"pool_recycled\":{},\"pool_len\":{},",
                "\"open_connections\":{},\"read_paused_connections\":{},",
                "\"write_buffered_bytes\":{},\"backpressure_events\":{}}}"
            ),
            self.searches,
            self.inserts,
            self.inserted,
            self.removes,
            self.removed,
            self.helps,
            self.finger_hits,
            self.finger_misses,
            self.size_estimate,
            self.max_depth,
            depth_hist,
            self.depth_sum,
            latency,
            self.slow_ops.len(),
            self.reclaim.epoch,
            self.reclaim.epoch_lag,
            self.reclaim.pinned_threads,
            self.reclaim.retired_backlog,
            self.pool.hits,
            self.pool.misses,
            self.pool.recycled,
            self.pool.len,
            self.serve.open_connections,
            self.serve.read_paused_connections,
            self.serve.write_buffered_bytes,
            self.serve.backpressure_events,
        )
    }

    /// The snapshot in the Prometheus text exposition format, ready to
    /// serve from a `/metrics` endpoint. Latency renders as one
    /// histogram family (`nmbst_op_latency_ns`) with an `op` label per
    /// op type, cumulative `le` buckets at the power-of-two bounds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(8192);
        fn metric(out: &mut String, name: &str, kind: &str, help: &str, value: i128) {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(help);
            out.push_str("\n# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        metric(
            &mut out,
            "nmbst_searches_total",
            "counter",
            "Search operations.",
            self.searches as i128,
        );
        metric(
            &mut out,
            "nmbst_inserts_total",
            "counter",
            "Insert operations (incl. duplicate-rejected).",
            self.inserts as i128,
        );
        metric(
            &mut out,
            "nmbst_inserted_total",
            "counter",
            "Inserts that added a key.",
            self.inserted as i128,
        );
        metric(
            &mut out,
            "nmbst_removes_total",
            "counter",
            "Remove operations (incl. key-absent).",
            self.removes as i128,
        );
        metric(
            &mut out,
            "nmbst_removed_total",
            "counter",
            "Removes that deleted a key.",
            self.removed as i128,
        );
        metric(
            &mut out,
            "nmbst_helps_total",
            "counter",
            "Operations that helped a conflicting delete.",
            self.helps as i128,
        );
        metric(
            &mut out,
            "nmbst_finger_hits_total",
            "counter",
            "Batch ops whose finger anchor revalidated.",
            self.finger_hits as i128,
        );
        metric(
            &mut out,
            "nmbst_finger_misses_total",
            "counter",
            "Batch ops that fell back to a full root descent.",
            self.finger_misses as i128,
        );
        metric(
            &mut out,
            "nmbst_size_estimate",
            "gauge",
            "Live keys (inserted - removed; exact at quiescence).",
            self.size_estimate as i128,
        );
        metric(
            &mut out,
            "nmbst_max_depth",
            "gauge",
            "Deepest access path observed by a modify-path seek.",
            self.max_depth as i128,
        );
        // Descent-depth distribution as a Prometheus histogram:
        // cumulative `le` buckets at the power-of-two upper bounds.
        out.push_str(concat!(
            "# HELP nmbst_descent_depth Nodes touched per modify-path descent.\n",
            "# TYPE nmbst_descent_depth histogram\n"
        ));
        let mut cumulative = 0u64;
        for (b, count) in self.depth_hist.iter().enumerate() {
            cumulative += count;
            // Bucket b covers 2^(b-1) ..= 2^b - 1; its upper bound is
            // 2^b - 1 (bucket 0 is the exact-zero bucket). The saturated
            // last bucket is unbounded, so it folds into +Inf.
            if b + 1 < DEPTH_BUCKETS {
                let le = (1u64 << b) - 1;
                let _ = writeln!(
                    out,
                    "nmbst_descent_depth_bucket{{le=\"{le}\"}} {cumulative}"
                );
            }
        }
        let _ = writeln!(
            out,
            "nmbst_descent_depth_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(out, "nmbst_descent_depth_sum {}", self.depth_sum);
        let _ = writeln!(out, "nmbst_descent_depth_count {cumulative}");
        // Per-op-type latency: one histogram family, labelled series.
        out.push_str(concat!(
            "# HELP nmbst_op_latency_ns Sampled operation latency by op type (ns).\n",
            "# TYPE nmbst_op_latency_ns histogram\n"
        ));
        for (label, hist) in self.latency.by_class() {
            hist.fmt_prometheus_series(&mut out, "nmbst_op_latency_ns", &format!("op=\"{label}\""));
        }
        metric(
            &mut out,
            "nmbst_slow_ops_captured",
            "gauge",
            "Slow-op records currently in the capture ring.",
            self.slow_ops.len() as i128,
        );
        metric(
            &mut out,
            "nmbst_reclaim_epoch",
            "gauge",
            "Reclaimer global epoch.",
            self.reclaim.epoch as i128,
        );
        metric(
            &mut out,
            "nmbst_reclaim_epoch_lag",
            "gauge",
            "Global epoch minus oldest pinned epoch.",
            self.reclaim.epoch_lag as i128,
        );
        metric(
            &mut out,
            "nmbst_reclaim_pinned_threads",
            "gauge",
            "Threads currently pinned.",
            self.reclaim.pinned_threads as i128,
        );
        metric(
            &mut out,
            "nmbst_reclaim_retired_backlog",
            "gauge",
            "Objects retired but not yet freed.",
            self.reclaim.retired_backlog as i128,
        );
        metric(
            &mut out,
            "nmbst_pool_hits_total",
            "counter",
            "Node allocations served from recycled pool memory.",
            self.pool.hits as i128,
        );
        metric(
            &mut out,
            "nmbst_pool_misses_total",
            "counter",
            "Node allocations that fell through to the allocator.",
            self.pool.misses as i128,
        );
        metric(
            &mut out,
            "nmbst_pool_recycled_total",
            "counter",
            "Reclaimed nodes returned to the pool.",
            self.pool.recycled as i128,
        );
        metric(
            &mut out,
            "nmbst_pool_len",
            "gauge",
            "Free blocks currently in the shared pool.",
            self.pool.len as i128,
        );
        metric(
            &mut out,
            "nmbst_serve_open_connections",
            "gauge",
            "Connections currently registered with serving reactors.",
            self.serve.open_connections as i128,
        );
        metric(
            &mut out,
            "nmbst_serve_read_paused_connections",
            "gauge",
            "Connections read-paused by write-buffer backpressure.",
            self.serve.read_paused_connections as i128,
        );
        metric(
            &mut out,
            "nmbst_serve_write_buffered_bytes",
            "gauge",
            "Bytes in not-yet-flushed per-connection write buffers.",
            self.serve.write_buffered_bytes as i128,
        );
        metric(
            &mut out,
            "nmbst_serve_backpressure_events_total",
            "counter",
            "Connections that transitioned into the read-paused state.",
            self.serve.backpressure_events as i128,
        );
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "searches={} inserts={}/{} removes={}/{} helps={} finger={}/{} size≈{} \
             max_depth={} mean_depth≈{:.1} lat_samples={} slow_ops={} \
             epoch={} lag={} pinned={} backlog={} \
             pool_hits={} pool_misses={} pool_recycled={} pool_len={} \
             conns={} read_paused={} wbuf_bytes={} backpressure={}",
            self.searches,
            self.inserted,
            self.inserts,
            self.removed,
            self.removes,
            self.helps,
            self.finger_hits,
            self.finger_hits + self.finger_misses,
            self.size_estimate,
            self.max_depth,
            self.depth_sum as f64 / self.depth_hist.iter().sum::<u64>().max(1) as f64,
            self.latency.len(),
            self.slow_ops.len(),
            self.reclaim.epoch,
            self.reclaim.epoch_lag,
            self.reclaim.pinned_threads,
            self.reclaim.retired_backlog,
            self.pool.hits,
            self.pool.misses,
            self.pool.recycled,
            self.pool.len,
            self.serve.open_connections,
            self.serve.read_paused_connections,
            self.serve.write_buffered_bytes,
            self.serve.backpressure_events,
        )
    }
}
