//! Observability: an always-on metrics facade and a feature-gated flight
//! recorder.
//!
//! The paper's claims are claims about *events* — one CAS per insert, a
//! 1-CAS/1-BTS/1-CAS delete, helping that never allocates, splices that
//! excise whole chains. This module makes those events visible on a
//! running tree, at two very different price points:
//!
//! * **Metrics** ([`MetricsSnapshot`]) are always compiled in. Operation
//!   counters live in cache-padded shards bumped with one relaxed
//!   `fetch_add` at the plain-API entry points (handles batch in plain
//!   fields and flush on re-pin, so the hot loop pays nothing per op);
//!   gauges (tree size estimate, max observed depth, and the reclamation
//!   health gauges of [`nmbst_reclaim::ReclaimGauges`]) are folded in at
//!   snapshot time. Exposition is JSON or Prometheus text.
//! * **The flight recorder** (`FlightRecorder`, `feature = "obs"`) is a
//!   fixed-capacity, per-thread, lock-free ring of structural events with
//!   a monotonic sequence number. It records from the same code sites
//!   `chaos` hooks — the injection points *are* the algorithm's atomic
//!   steps, so a trace of them is a replayable interleaving. Without the
//!   feature every `emit` call is an empty `#[inline(always)]` function
//!   and the event argument is dead code the optimizer deletes: the
//!   default build carries no ring, no sequence counter, no branch.
//!
//! The payoff: when the schedule explorer in `nmbst-lincheck` finds a
//! linearizability violation, it dumps the merged, sequence-ordered
//! trace as a postmortem, so the violating interleaving can be read
//! without re-running the explorer.
//!
//! A third price point sits between the two (`feature = "obs-latency"`,
//! default on): **latency distributions**. [`hist`] holds the
//! concurrent log-bucketed histogram; [`slow`] the lock-free ring of
//! slow-op records; recording follows the metrics cost discipline
//! (sampled point ops, handle-buffered flush on re-pin — see
//! [`LatencyConfig`]). Disabling the feature compiles the timers down
//! to zero-sized tokens and empty inlines.

pub mod hist;
mod metrics;
pub mod slow;
#[cfg(feature = "obs")]
mod trace;

mod prom;

pub use hist::{ConcurrentHistogram, Histogram, LatencySnapshot};
pub(crate) use metrics::{LatTimer, Metrics, PendingLat, PendingOps};
pub use metrics::{LatencyConfig, MetricsSnapshot, ServeGauges, DEPTH_BUCKETS};
pub use prom::validate_prometheus;
pub use slow::{slow_event_name, SlowOp, SLOW_EVENTS};
#[cfg(feature = "obs")]
pub(crate) use trace::emit;
#[cfg(feature = "obs")]
pub use trace::{FlightRecorder, RecorderGuard, TraceEvent};

/// The operation classes latency is recorded under — one concurrent
/// histogram per class (see [`hist::LatencySnapshot`]), and the `kind`
/// discriminant of tree-deposited [`slow::SlowOp`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// `contains` / `get` / `with_value` / `get_batch`.
    Get = 0,
    /// `insert` (plain API or sampled handle op).
    Insert = 1,
    /// `remove` / `remove_get`.
    Remove = 2,
    /// A whole `insert_batch` / `remove_batch` / `get_batch` call
    /// (timed per call, not per key).
    Batch = 3,
    /// A whole `range_for_each` / `range_collect` call.
    Range = 4,
}

impl OpClass {
    /// Number of op classes (the histogram array length).
    pub const COUNT: usize = 5;

    /// The class's label in exposition output (`op="..."`).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Insert => "insert",
            OpClass::Remove => "remove",
            OpClass::Batch => "batch",
            OpClass::Range => "range",
        }
    }

    /// The class for a stored discriminant, if in range.
    pub fn from_u8(v: u8) -> Option<OpClass> {
        match v {
            0 => Some(OpClass::Get),
            1 => Some(OpClass::Insert),
            2 => Some(OpClass::Remove),
            3 => Some(OpClass::Batch),
            4 => Some(OpClass::Range),
            _ => None,
        }
    }
}

/// A structural event of the algorithm, as recorded by the
/// `FlightRecorder` (`feature = "obs"`).
///
/// Each variant corresponds to one step of Algorithms 1–4 (and the two
/// handle/retry affordances layered on top); all but `SeekStart` and
/// `Repin` coincide with a `chaos` injection point, so a recorded trace
/// reads as the schedule a fault plan or the explorer drove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A full root-to-leaf seek began (Algorithm 1).
    SeekStart,
    /// A retry restarted descent from a revalidated local anchor instead
    /// of the root.
    LocalRestart,
    /// A delete's injection CAS succeeded: the victim's incoming edge is
    /// now flagged. This is the delete's linearization point.
    InjectFlag,
    /// Cleanup tagged the sibling edge that will be hoisted (Algorithm 4,
    /// line 106).
    TagSibling,
    /// Cleanup's splice CAS at the ancestor succeeded, excising a chain
    /// of `chain_len` nodes (Algorithm 4, lines 107–108). Emitted after
    /// the detached chain has been walked, so it sequences *after* this
    /// delete's `Retire`.
    Splice {
        /// Number of nodes the splice physically unlinked.
        chain_len: u32,
    },
    /// An operation began helping a conflicting delete's cleanup instead
    /// of its own work (Algorithm 2 lines 55–57 / Algorithm 3).
    Help,
    /// A won splice is about to retire its detached chain.
    Retire,
    /// A pin-amortizing handle refreshed its reclamation guard.
    Repin,
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::SeekStart => f.write_str("SeekStart"),
            EventKind::LocalRestart => f.write_str("LocalRestart"),
            EventKind::InjectFlag => f.write_str("InjectFlag"),
            EventKind::TagSibling => f.write_str("TagSibling"),
            EventKind::Splice { chain_len } => write!(f, "Splice{{chain_len={chain_len}}}"),
            EventKind::Help => f.write_str("Help"),
            EventKind::Retire => f.write_str("Retire"),
            EventKind::Repin => f.write_str("Repin"),
        }
    }
}

/// Records `kind` into the current thread's attached flight-recorder
/// ring. No-op (and fully compiled away) when `feature = "obs"` is off
/// or no recorder is attached.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub(crate) fn emit(kind: EventKind) {
    let _ = kind;
}
