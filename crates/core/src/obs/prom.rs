//! A strict validator for the Prometheus text exposition format, used
//! by tests so a malformed scrape fails in CI rather than in Grafana.
//!
//! This checks the contract the crate's emitters promise, which is
//! tighter than what a lenient Prometheus scraper would accept:
//!
//! * every metric has a `# HELP` line immediately followed by its
//!   `# TYPE` line, declared exactly once, before any of its samples;
//! * all samples of a metric are contiguous (no interleaving between
//!   families);
//! * `counter` metrics are named `*_total`;
//! * `histogram` metrics emit, per label series, cumulative
//!   `_bucket{le=...}` rows with strictly ascending bounds and
//!   non-decreasing counts ending in `le="+Inf"`, plus `_sum` and
//!   `_count` rows where `_count` equals the `+Inf` bucket.

use std::collections::BTreeMap;

/// Validates `text` against the exposition contract described in the
/// module docs above. Returns the first violation found, prefixed
/// with its 1-based line number.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut help: Vec<String> = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // The metric whose block we are currently inside, with its kind.
    let mut current: Option<(String, String)> = None;
    // Name of the metric a dangling HELP line announced.
    let mut pending_help: Option<String> = None;
    // Histogram series state, keyed by (base name, non-le labels):
    // bucket rows in file order, then sum/count.
    type Series = (Vec<(f64, f64)>, Option<f64>, Option<f64>);
    let mut hists: BTreeMap<(String, String), Series> = BTreeMap::new();
    let mut samples_seen: BTreeMap<String, u64> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        let err = |msg: String| Err(format!("line {n}: {msg}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts.next().unwrap_or_default().to_string();
            let payload = parts.next().unwrap_or_default();
            match keyword {
                "HELP" => {
                    if name.is_empty() || payload.is_empty() {
                        return err(format!("HELP without name or text: {line:?}"));
                    }
                    if pending_help.is_some() {
                        return err(format!("HELP {name} while a HELP still awaits its TYPE"));
                    }
                    if help.contains(&name) {
                        return err(format!("duplicate HELP for {name}"));
                    }
                    help.push(name.clone());
                    pending_help = Some(name);
                }
                "TYPE" => {
                    let kind = payload.to_string();
                    if pending_help.as_deref() != Some(name.as_str()) {
                        return err(format!("TYPE {name} not immediately after its HELP"));
                    }
                    pending_help = None;
                    if !matches!(kind.as_str(), "counter" | "gauge" | "histogram" | "summary") {
                        return err(format!("unknown TYPE kind {kind:?} for {name}"));
                    }
                    if types.insert(name.clone(), kind.clone()).is_some() {
                        return err(format!("duplicate TYPE for {name}"));
                    }
                    if kind == "counter" && !name.ends_with("_total") {
                        return err(format!("counter {name} not named *_total"));
                    }
                    current = Some((name, kind));
                }
                _ => return err(format!("unknown comment keyword {keyword:?}")),
            }
            continue;
        }
        // A sample row: name[{labels}] value
        if pending_help.is_some() {
            return err(format!("sample before TYPE: {line:?}"));
        }
        let (name_labels, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return err(format!("sample without value: {line:?}")),
        };
        let value: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => return err(format!("unparsable sample value {value:?}")),
        };
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => match rest.strip_suffix('}') {
                Some(labels) => (name, labels),
                None => return err(format!("unterminated label set: {line:?}")),
            },
            None => (name_labels, ""),
        };
        let (name_b, kind) = match &current {
            Some((n0, k)) => (n0.clone(), k.clone()),
            None => return err(format!("sample {name} before any TYPE")),
        };
        // Resolve the owning family and check block contiguity.
        let owner = if kind == "histogram" {
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"));
            match base {
                Some(base) if base == name_b => base.to_string(),
                _ => {
                    return err(format!(
                        "sample {name} inside histogram {name_b}'s block \
                         is not one of its _bucket/_sum/_count rows"
                    ))
                }
            }
        } else {
            if name != name_b {
                return err(format!("sample {name} interleaved into {name_b}'s block"));
            }
            name.to_string()
        };
        *samples_seen.entry(owner.clone()).or_insert(0) += 1;
        if kind != "histogram" {
            continue;
        }
        // Split off the `le` label; the rest keys the series.
        let mut le: Option<&str> = None;
        let mut rest: Vec<&str> = Vec::new();
        for part in labels.split(',').filter(|p| !p.is_empty()) {
            match part.strip_prefix("le=") {
                Some(bound) => le = Some(bound.trim_matches('"')),
                None => rest.push(part),
            }
        }
        let series = hists.entry((owner, rest.join(","))).or_default();
        if name.ends_with("_bucket") {
            let bound = match le {
                Some("+Inf") => f64::INFINITY,
                Some(raw) => match raw.parse() {
                    Ok(b) => b,
                    Err(_) => return err(format!("unparsable le bound {raw:?}")),
                },
                None => return err(format!("_bucket row without le label: {line:?}")),
            };
            series.0.push((bound, value));
        } else if name.ends_with("_sum") {
            if series.1.replace(value).is_some() {
                return err(format!("duplicate _sum for series {labels:?}"));
            }
        } else {
            if le.is_some() {
                return err(format!("le label on non-bucket row: {line:?}"));
            }
            if series.2.replace(value).is_some() {
                return err(format!("duplicate _count for series {labels:?}"));
            }
        }
    }
    if let Some(name) = pending_help {
        return Err(format!("HELP {name} never followed by its TYPE"));
    }
    for name in &help {
        if !types.contains_key(name) {
            return Err(format!("HELP {name} has no TYPE"));
        }
    }
    for name in types.keys() {
        if !help.contains(name) {
            return Err(format!("TYPE {name} has no HELP"));
        }
        if samples_seen.get(name).copied().unwrap_or(0) == 0 {
            return Err(format!("metric {name} declared but has no samples"));
        }
    }
    for ((name, labels), (buckets, sum, count)) in &hists {
        let series = if labels.is_empty() {
            name.clone()
        } else {
            format!("{name}{{{labels}}}")
        };
        if buckets.is_empty() {
            return Err(format!("histogram {series} has no _bucket rows"));
        }
        for pair in buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(format!("histogram {series} le bounds not ascending"));
            }
            if pair[1].1 < pair[0].1 {
                return Err(format!("histogram {series} bucket counts not cumulative"));
            }
        }
        let (last_le, last_count) = *buckets.last().unwrap();
        if last_le != f64::INFINITY {
            return Err(format!("histogram {series} does not end in le=\"+Inf\""));
        }
        if sum.is_none() {
            return Err(format!("histogram {series} missing _sum"));
        }
        match count {
            None => return Err(format!("histogram {series} missing _count")),
            Some(c) if *c != last_count => {
                return Err(format!(
                    "histogram {series} _count {c} != +Inf bucket {last_count}"
                ))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = "\
# HELP demo_ops_total Operations.
# TYPE demo_ops_total counter
demo_ops_total 7
# HELP demo_lat_ns Latency.
# TYPE demo_lat_ns histogram
demo_lat_ns_bucket{op=\"get\",le=\"1\"} 1
demo_lat_ns_bucket{op=\"get\",le=\"2\"} 3
demo_lat_ns_bucket{op=\"get\",le=\"+Inf\"} 4
demo_lat_ns_sum{op=\"get\"} 9
demo_lat_ns_count{op=\"get\"} 4
# HELP demo_size Size.
# TYPE demo_size gauge
demo_size -2
";

    #[test]
    fn accepts_a_valid_exposition() {
        validate_prometheus(VALID).unwrap();
    }

    #[test]
    fn rejects_the_classic_regressions() {
        // (mutation, expected error fragment)
        let cases = [
            (
                "# TYPE demo_size gauge",
                "# TYPE demo_size counter",
                "not named *_total",
            ),
            (
                "# HELP demo_size Size.\n",
                "",
                "TYPE demo_size not immediately after",
            ),
            ("le=\"+Inf\"} 4", "le=\"+Inf\"} 2", "not cumulative"),
            (
                "demo_lat_ns_count{op=\"get\"} 4",
                "demo_lat_ns_count{op=\"get\"} 5",
                "!= +Inf bucket",
            ),
            ("demo_lat_ns_sum{op=\"get\"} 9\n", "", "missing _sum"),
            ("le=\"2\"", "le=\"0.5\"", "not ascending"),
            ("demo_size -2", "demo_other -2", "interleaved"),
        ];
        for (from, to, fragment) in cases {
            let mutated = VALID.replace(from, to);
            assert_ne!(mutated, VALID, "mutation {from:?} did not apply");
            let e = validate_prometheus(&mutated).unwrap_err();
            assert!(
                e.contains(fragment),
                "expected {fragment:?} in error, got: {e}"
            );
        }
    }

    #[test]
    fn rejects_histogram_without_inf() {
        let text = VALID.replace("demo_lat_ns_bucket{op=\"get\",le=\"+Inf\"} 4\n", "");
        let e = validate_prometheus(&text).unwrap_err();
        assert!(e.contains("+Inf"), "got: {e}");
    }
}
