//! Log-bucketed latency histograms: a fixed-memory single-threaded
//! [`Histogram`] (also the snapshot/merge/exposition type) and its
//! sharded relaxed-atomic counterpart [`ConcurrentHistogram`] for
//! recording on live trees.
//!
//! The bucket scheme is HDR-style: [`BUCKETS`] power-of-two buckets,
//! each cut into [`SUBS`] linear sub-buckets, covering `1 ns` to
//! `2^36 - 1 ns` (~69 s) in 576 fixed slots. Within bucket `b` the
//! sub-bucket width is `2^b / 16`, so the worst-case relative error of
//! a reported slot value is `1/16 ≈ 6.7%` — tight enough to gate tail
//! percentiles, small enough that a histogram is 4.6 KiB.
//!
//! Recording is allocation-free and branch-light: one `leading_zeros`,
//! one shift, three counter bumps. The concurrent form stripes its
//! slots across `LAT_SHARDS` shards indexed by the same thread-local
//! shard assignment the operation counters use, so a recording thread
//! bumps lines it already owns; snapshots sum the shards (racy but
//! monotonic, the usual scrape contract).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two bucket.
pub const SUBS: usize = 16;
/// Power-of-two buckets: values are clamped to `1..2^BUCKETS` ns.
pub const BUCKETS: usize = 36;
/// Total histogram slots (`BUCKETS * SUBS`).
pub const SLOTS: usize = BUCKETS * SUBS;

/// Shards in a [`ConcurrentHistogram`]. Latency recording is sampled
/// (see `LatencyConfig`), so it needs far less striping than the per-op
/// counters; two shards keep same-slot contention off the common path
/// without quintupling the footprint.
const LAT_SHARDS: usize = 2;

/// The slot a nanosecond value lands in.
#[inline]
pub(crate) fn index(ns: u64) -> usize {
    let ns = ns.clamp(1, (1u64 << BUCKETS) - 1);
    let bucket = (63 - ns.leading_zeros()) as usize;
    let base = 1u64 << bucket;
    let sub = if bucket == 0 {
        0
    } else {
        (((ns - base) * SUBS as u64) >> bucket) as usize
    };
    bucket * SUBS + sub.min(SUBS - 1)
}

/// The representative (lower-bound) value of a slot.
#[inline]
pub(crate) fn slot_value(idx: usize) -> u64 {
    let bucket = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    let base = 1u64 << bucket;
    base + ((sub << bucket) / SUBS as u64)
}

/// The inclusive upper bound of power-of-two bucket `b` — the `le`
/// boundary its slots aggregate to in Prometheus exposition.
#[inline]
fn bucket_upper_bound(b: usize) -> u64 {
    (1u64 << (b + 1)) - 1
}

fn zeroed_counts() -> Box<[u64; SLOTS]> {
    vec![0u64; SLOTS]
        .into_boxed_slice()
        .try_into()
        .expect("SLOTS-sized box")
}

/// A fixed-memory log-bucketed histogram of nanosecond durations.
///
/// Single-writer; also the *snapshot* type a [`ConcurrentHistogram`]
/// sums into, the *merge* unit sharded snapshots aggregate, and the
/// exposition source for JSON summaries and Prometheus histogram
/// series. ≤6.7% relative slot error (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use nmbst::obs::hist::Histogram;
///
/// let mut h = Histogram::new();
/// for ns in [800, 950, 1_200, 50_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.len(), 4);
/// assert_eq!(h.max(), 50_000);
/// let p50 = h.percentile(50.0);
/// assert!((900..=1_000).contains(&p50), "p50 {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; SLOTS]>,
    total: u64,
    max: u64,
    sum: u128,
}

impl Histogram {
    /// An empty histogram (~4.6 KiB, allocated once).
    pub fn new() -> Self {
        Histogram {
            counts: zeroed_counts(),
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Records one duration in nanoseconds. Zero clamps up to 1 ns;
    /// values ≥ 2^36 ns saturate into the top slot (exact in `sum` and
    /// `max` either way).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[index(ns)] += 1;
        self.total += 1;
        self.max = self.max.max(ns);
        self.sum += u128::from(ns);
    }

    /// Folds `other` into `self`. Slot counts and sums add exactly;
    /// `max` takes the maximum.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The exact sum of recorded values in nanoseconds.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The exact mean in nanoseconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at percentile `p` (0 < p ≤ 100), within one slot's
    /// resolution, capped at the exact observed max. Returns 0 when
    /// empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return slot_value(idx).min(self.max);
            }
        }
        self.max
    }

    /// Counts aggregated to the [`BUCKETS`] power-of-two buckets — the
    /// granularity Prometheus exposition uses.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (idx, &count) in self.counts.iter().enumerate() {
            out[idx / SUBS] += count;
        }
        out
    }

    /// One-line human summary in microseconds.
    pub fn summary(&self) -> String {
        if self.total == 0 {
            return "no samples".to_string();
        }
        format!(
            "n={} mean={:.1}µs p50={:.1}µs p99={:.1}µs p999={:.1}µs max={:.1}µs",
            self.total,
            self.mean() / 1_000.0,
            self.percentile(50.0) as f64 / 1_000.0,
            self.percentile(99.0) as f64 / 1_000.0,
            self.percentile(99.9) as f64 / 1_000.0,
            self.max as f64 / 1_000.0,
        )
    }

    /// The compact JSON summary object embedded in `MetricsSnapshot::
    /// to_json` and the server's METRICS reply: count, sum, max, and
    /// the p50/p99/p999 computed from the full-resolution slots (so
    /// scrape consumers never re-derive percentiles from coarse
    /// buckets).
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
            self.total,
            self.sum,
            self.max,
            self.percentile(50.0),
            self.percentile(99.0),
            self.percentile(99.9),
        )
    }

    /// Appends one Prometheus histogram *series* (cumulative
    /// `_bucket{…,le="…"}` lines at the power-of-two bounds, then
    /// `+Inf`, `_sum`, `_count`) for metric `name` with `labels`
    /// (`key="value"` pairs, comma-separated, or empty). The caller
    /// emits the `# HELP`/`# TYPE` header once per metric name.
    pub fn fmt_prometheus_series(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write as _;
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (b, count) in self.bucket_counts().iter().enumerate() {
            cumulative += count;
            // The top bucket saturates (it also holds clamped values),
            // so its bound folds into +Inf rather than claiming 2^36-1.
            if b + 1 < BUCKETS {
                let le = bucket_upper_bound(b);
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
                );
            }
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
        );
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", self.sum);
            let _ = writeln!(out, "{name}_count {cumulative}");
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", self.sum);
            let _ = writeln!(out, "{name}_count{{{labels}}} {cumulative}");
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One shard of a [`ConcurrentHistogram`]: its own slot array plus
/// total/sum, all bumped with relaxed `fetch_add`. Boxed so shards are
/// separate allocations (no inter-shard false sharing to pad away).
struct HistShard {
    counts: Box<[AtomicU64; SLOTS]>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        let counts: Box<[AtomicU64]> = (0..SLOTS).map(|_| AtomicU64::new(0)).collect();
        HistShard {
            counts: counts.try_into().expect("SLOTS-sized box"),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A concurrent, mergeable, fixed-memory latency histogram: the
/// [`Histogram`] bucket scheme promoted to sharded relaxed-atomic
/// counters. Zero allocation per [`record`](ConcurrentHistogram::record);
/// [`snapshot`](ConcurrentHistogram::snapshot) sums the shards into a
/// plain [`Histogram`] for percentiles, merging, and exposition.
///
/// # Examples
///
/// ```
/// use nmbst::obs::hist::ConcurrentHistogram;
///
/// let h = ConcurrentHistogram::new();
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for ns in 1..=1_000 {
///                 h.record(ns);
///             }
///         });
///     }
/// });
/// let snap = h.snapshot();
/// assert_eq!(snap.len(), 4_000, "relaxed shards lose nothing");
/// ```
pub struct ConcurrentHistogram {
    shards: [HistShard; LAT_SHARDS],
    /// Racy max gauge: common case (not a new max) is one relaxed load.
    max: AtomicU64,
}

impl ConcurrentHistogram {
    /// An empty histogram (two shard allocations, ~9 KiB total).
    pub fn new() -> Self {
        ConcurrentHistogram {
            shards: [HistShard::new(), HistShard::new()],
            max: AtomicU64::new(0),
        }
    }

    /// Records one duration: three relaxed `fetch_add`s on this
    /// thread's shard (assigned by the same round-robin thread-local
    /// the operation counters use) plus a racy max update.
    #[inline]
    pub fn record(&self, ns: u64) {
        let shard = &self.shards[super::metrics::my_shard() % LAT_SHARDS];
        shard.counts[index(ns)].fetch_add(1, Ordering::Relaxed);
        shard.total.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(ns, Ordering::Relaxed);
        if ns > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// Sums the shards into a plain [`Histogram`] — exact once writers
    /// are quiescent, racy-but-monotonic while they are not.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for shard in &self.shards {
            for (dst, src) in h.counts.iter_mut().zip(shard.counts.iter()) {
                *dst += src.load(Ordering::Relaxed);
            }
            h.total += shard.total.load(Ordering::Relaxed);
            h.sum += u128::from(shard.sum.load(Ordering::Relaxed));
        }
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

impl Default for ConcurrentHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ConcurrentHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentHistogram")
            .field("snapshot", &self.snapshot().summary())
            .finish()
    }
}

/// Per-op-kind latency histograms, as snapshotted into a
/// `MetricsSnapshot` — one [`Histogram`] per [`OpClass`](super::OpClass).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencySnapshot {
    /// `contains`/`get`/`with_value` calls (sampled).
    pub get: Histogram,
    /// `insert` calls (sampled).
    pub insert: Histogram,
    /// `remove`/`remove_get` calls (sampled).
    pub remove: Histogram,
    /// Whole batch-API calls (`insert_batch`/`remove_batch`/
    /// `get_batch`/`contains_batch`; one sample per call, every call).
    pub batch: Histogram,
    /// Whole range-traversal calls (`range_for_each` and everything on
    /// top of it; one sample per call, every call).
    pub range: Histogram,
}

impl LatencySnapshot {
    /// Folds another snapshot in: per-kind histogram merges (counts and
    /// sums exact, max maxed).
    pub fn merge(&mut self, other: &LatencySnapshot) {
        self.get.merge(&other.get);
        self.insert.merge(&other.insert);
        self.remove.merge(&other.remove);
        self.batch.merge(&other.batch);
        self.range.merge(&other.range);
    }

    /// The per-kind histograms with their exposition labels, in fixed
    /// order.
    pub fn by_class(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("get", &self.get),
            ("insert", &self.insert),
            ("remove", &self.remove),
            ("batch", &self.batch),
            ("range", &self.range),
        ]
    }

    /// Total samples across every op kind.
    pub fn len(&self) -> u64 {
        self.by_class().iter().map(|(_, h)| h.len()).sum()
    }

    /// True when no kind has any samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary(), "no samples");
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1_000);
        assert_eq!(h.len(), 1);
        assert_eq!(h.max(), 1_000);
        let p50 = h.percentile(50.0);
        assert!((937..=1_000).contains(&p50), "p50 {p50} within one slot");
        assert_eq!(h.percentile(99.9), p50);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000);
        }
        let mut prev = 0;
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p} {v} < previous {prev}");
            assert!(v <= h.max());
            prev = v;
        }
    }

    #[test]
    fn relative_error_within_bucket_resolution() {
        for v in [1u64, 7, 100, 1_000, 65_535, 1_000_000, 123_456_789] {
            let idx = index(v);
            let edge = slot_value(idx);
            assert!(edge <= v, "slot lower bound exceeds value: {edge} > {v}");
            assert!(v - edge <= v / 8, "slot {idx} edge {edge} too far from {v}");
        }
    }

    #[test]
    fn merge_combines_exactly() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=100 {
            a.record(i * 10);
            b.record(i * 1_000);
        }
        let (la, lb) = (a.len(), b.len());
        let (sa, sb) = (a.sum(), b.sum());
        a.merge(&b);
        assert_eq!(a.len(), la + lb, "counts preserved");
        assert_eq!(a.sum(), sa + sb, "sum preserved");
        assert_eq!(a.max(), b.max(), "max maxed");
        assert!(a.percentile(99.0) >= 90_000);
    }

    #[test]
    fn zero_and_huge_values_clamp() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.len(), 2);
        assert_eq!(h.max(), u64::MAX, "max is exact even when clamped");
        assert_eq!(h.sum(), u128::from(u64::MAX));
        assert!(h.percentile(1.0) >= 1);
    }

    #[test]
    fn concurrent_histogram_loses_nothing() {
        let h = ConcurrentHistogram::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i + 1);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.len(), 8_000);
        assert_eq!(snap.max(), 8_000);
        let expect_sum: u128 = (1..=8_000u128).sum();
        assert_eq!(snap.sum(), expect_sum, "relaxed shards sum exactly");
    }

    #[test]
    fn bucket_counts_aggregate_slots() {
        let mut h = Histogram::new();
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1_000_000); // bucket 19
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[19], 1);
        assert_eq!(buckets.iter().sum::<u64>(), h.len());
    }

    #[test]
    fn prometheus_series_shape() {
        let mut h = Histogram::new();
        for ns in [10, 100, 1_000] {
            h.record(ns);
        }
        let mut out = String::new();
        h.fmt_prometheus_series(&mut out, "test_ns", "op=\"get\"");
        assert!(out.contains("test_ns_bucket{op=\"get\",le=\"1\"} 0"));
        assert!(out.contains("test_ns_bucket{op=\"get\",le=\"+Inf\"} 3"));
        assert!(out.contains("test_ns_sum{op=\"get\"} 1110"));
        assert!(out.contains("test_ns_count{op=\"get\"} 3"));
        // Unlabelled series omit the braces on _sum/_count.
        let mut bare = String::new();
        h.fmt_prometheus_series(&mut bare, "test_ns", "");
        assert!(bare.contains("test_ns_bucket{le=\"+Inf\"} 3"));
        assert!(bare.contains("test_ns_sum 1110"));
    }

    #[test]
    fn summary_json_is_wellformed() {
        let mut h = Histogram::new();
        h.record(500);
        let json = h.summary_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in ["count", "sum", "max", "p50", "p99", "p999"] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"sum\":500"));
    }
}
