//! Slow-op capture: a lock-free ring of compact records for operations
//! that exceeded a configured latency threshold.
//!
//! A tail-latency outlier is only actionable with context, so each
//! record carries the op kind, the key (when the depositing layer has a
//! `u64` key — the server does; the generic tree stores 0), the
//! duration, and — when the `obs` flight recorder was attached on the
//! depositing thread — the chain of structural events recorded during
//! the op (retries, helps, splices), truncated to [`SLOW_EVENTS`].
//!
//! The ring is multi-producer/multi-consumer without locks: writers
//! claim a slot with one `fetch_add` on the head ticket, then publish
//! through a Vyukov-style per-slot sequence word (odd while writing,
//! even-and-ticket-tagged when stable). Readers sample every slot and
//! discard torn ones by re-checking the sequence — no reader ever
//! blocks a writer, and the ring keeps the *latest* window when full,
//! the same retention policy as the flight recorder. Record payloads
//! are stored through relaxed atomics (five words per slot), so a torn
//! read is detected, never undefined.

use std::sync::atomic::{AtomicU64, Ordering};

/// Max structural events a [`SlowOp`] retains from the flight recorder.
pub const SLOW_EVENTS: usize = 12;

/// Records the tree-level slow ring retains (per tree).
pub(crate) const TREE_SLOW_CAP: usize = 64;

/// A compact record of one slow operation. `Copy`, fixed-size, and
/// wire-encodable (the server's SLOWLOG verb ships these verbatim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlowOp {
    /// Op kind discriminant (an [`OpClass`](super::OpClass) as `u8` for
    /// tree-level records; the server uses its wire opcodes).
    pub kind: u8,
    /// Which layer deposited the record: 0 = tree, 1 = server.
    pub origin: u8,
    /// Number of valid entries in [`events`](SlowOp::events).
    pub n_events: u8,
    /// The key the op targeted, when the depositing layer has a `u64`
    /// key (the server); 0 otherwise (generic tree keys are only `Ord`).
    pub key: u64,
    /// Wall-clock duration of the op in nanoseconds.
    pub ns: u64,
    /// Flight-recorder event discriminants for the op, oldest first
    /// (see [`slow_event_name`]); all zero when no recorder was
    /// attached or `feature = "obs"` is off.
    pub events: [u8; SLOW_EVENTS],
}

impl SlowOp {
    /// Packs the record into the ring's five payload words.
    fn encode(&self) -> [u64; 5] {
        let mut lo = [0u8; 8];
        let mut hi = [0u8; 8];
        lo.copy_from_slice(&self.events[..8]);
        hi[..SLOW_EVENTS - 8].copy_from_slice(&self.events[8..]);
        [
            u64::from(self.kind) | (u64::from(self.origin) << 8) | (u64::from(self.n_events) << 16),
            self.key,
            self.ns,
            u64::from_le_bytes(lo),
            u64::from_le_bytes(hi),
        ]
    }

    fn decode(words: [u64; 5]) -> SlowOp {
        let mut events = [0u8; SLOW_EVENTS];
        events[..8].copy_from_slice(&words[3].to_le_bytes());
        events[8..].copy_from_slice(&words[4].to_le_bytes()[..SLOW_EVENTS - 8]);
        SlowOp {
            kind: words[0] as u8,
            origin: (words[0] >> 8) as u8,
            n_events: (words[0] >> 16) as u8,
            key: words[1],
            ns: words[2],
            events,
        }
    }

    /// The recorded event chain as names, oldest first (empty when no
    /// recorder was attached).
    pub fn event_names(&self) -> Vec<&'static str> {
        self.events[..usize::from(self.n_events).min(SLOW_EVENTS)]
            .iter()
            .map(|&d| slow_event_name(d))
            .collect()
    }
}

/// The name of a flight-recorder event discriminant as stored in
/// [`SlowOp::events`]. The numbering matches the recorder's on-ring
/// encoding (asserted against it in tests when `feature = "obs"` is
/// on), and is stable for wire consumers that never compile the
/// recorder in.
pub fn slow_event_name(discriminant: u8) -> &'static str {
    match discriminant {
        0 => "SeekStart",
        1 => "LocalRestart",
        2 => "InjectFlag",
        3 => "TagSibling",
        4 => "Splice",
        5 => "Help",
        6 => "Retire",
        7 => "Repin",
        _ => "?",
    }
}

/// One ring slot: a Vyukov-style sequence word plus the five payload
/// words, all atomics so concurrent access is detected-torn, never UB.
struct Slot {
    /// Odd while a writer is mid-publish; `2 * (ticket + 1)` once the
    /// record for `ticket` is stable. Even values are strictly
    /// monotonic per slot, so a reader that sees the same even value
    /// before and after its payload loads read a consistent record.
    seq: AtomicU64,
    words: [AtomicU64; 5],
}

/// A fixed-capacity lock-free MPMC overwrite ring of [`SlowOp`]s.
///
/// Writers never block or allocate; when the ring is full the oldest
/// records are overwritten (slow ops are diagnostics — the latest
/// window is the useful one). Readers ([`snapshot`](SlowRing::snapshot))
/// may run concurrently with writers and skip records they catch
/// mid-publish.
///
/// # Examples
///
/// ```
/// use nmbst::obs::slow::{SlowOp, SlowRing};
///
/// let ring = SlowRing::new(8);
/// ring.push(SlowOp { kind: 1, ns: 2_000_000, ..SlowOp::default() });
/// let seen = ring.snapshot();
/// assert_eq!(seen.len(), 1);
/// assert_eq!(seen[0].ns, 2_000_000);
/// ```
pub struct SlowRing {
    /// Total records ever pushed; a writer's slot is `ticket % cap`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl SlowRing {
    /// A ring retaining the latest `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        SlowRing {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: Default::default(),
                })
                .collect(),
        }
    }

    /// Deposits one record: one `fetch_add` to claim a ticket, six
    /// relaxed stores to publish. Lock-free and allocation-free.
    pub fn push(&self, op: SlowOp) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let words = op.encode();
        // Odd = in flight. Two writers lapping each other on this slot
        // (ticket and ticket + cap) may interleave; readers discard the
        // torn result because the final even value they need to match
        // is ticket-tagged and strictly monotonic.
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        for (w, &v) in slot.words.iter().zip(words.iter()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * (ticket + 1), Ordering::Release);
    }

    /// Total records ever deposited (including overwritten ones).
    pub fn deposited(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The stable records currently in the ring, oldest first. Records
    /// mid-overwrite at read time are skipped, not spun on.
    pub fn snapshot(&self) -> Vec<SlowOp> {
        let mut out: Vec<(u64, SlowOp)> = Vec::new();
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before & 1 == 1 {
                continue; // never written, or mid-publish
            }
            let mut words = [0u64; 5];
            for (v, w) in words.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Acquire);
            }
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // overwritten while we read
            }
            out.push((before, SlowOp::decode(words)));
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, op)| op).collect()
    }
}

impl std::fmt::Debug for SlowRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowRing")
            .field("capacity", &self.slots.len())
            .field("deposited", &self.deposited())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: u8, key: u64, ns: u64) -> SlowOp {
        SlowOp {
            kind,
            key,
            ns,
            ..SlowOp::default()
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut events = [0u8; SLOW_EVENTS];
        for (i, e) in events.iter_mut().enumerate() {
            *e = i as u8;
        }
        let original = SlowOp {
            kind: 3,
            origin: 1,
            n_events: 12,
            key: u64::MAX,
            ns: 123_456_789,
            events,
        };
        assert_eq!(SlowOp::decode(original.encode()), original);
    }

    #[test]
    fn empty_ring_snapshot_is_empty() {
        let ring = SlowRing::new(4);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.deposited(), 0);
    }

    #[test]
    fn ring_keeps_latest_window_in_order() {
        let ring = SlowRing::new(4);
        for i in 0..10u64 {
            ring.push(op(0, i, i * 100));
        }
        assert_eq!(ring.deposited(), 10);
        let seen = ring.snapshot();
        assert_eq!(seen.len(), 4);
        assert_eq!(
            seen.iter().map(|o| o.key).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "latest window, oldest first"
        );
    }

    #[test]
    fn concurrent_pushes_never_yield_torn_records() {
        const THREADS: u64 = 4;
        const PER: u64 = 5_000;
        let ring = SlowRing::new(16);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..PER {
                        // kind/key/ns all derive from one value, so a
                        // torn mix of two records is detectable.
                        let v = t * PER + i;
                        ring.push(op((v % 5) as u8, v, v * 7));
                    }
                });
            }
            // Read while writers run: every record seen must be
            // internally consistent.
            let ring = &ring;
            s.spawn(move || {
                for _ in 0..1_000 {
                    for o in ring.snapshot() {
                        assert_eq!(o.kind, (o.key % 5) as u8, "torn record");
                        assert_eq!(o.ns, o.key * 7, "torn record");
                    }
                }
            });
        });
        assert_eq!(ring.deposited(), THREADS * PER);
        let final_snap = ring.snapshot();
        assert!(!final_snap.is_empty());
        for o in final_snap {
            assert_eq!(o.ns, o.key * 7);
        }
    }

    #[test]
    fn event_names_render() {
        let mut o = op(0, 0, 0);
        o.n_events = 3;
        o.events[0] = 0;
        o.events[1] = 1;
        o.events[2] = 4;
        assert_eq!(o.event_names(), vec!["SeekStart", "LocalRestart", "Splice"]);
    }
}
