//! # nmbst — Fast Concurrent Lock-Free Binary Search Trees
//!
//! A faithful, production-grade Rust implementation of the lock-free
//! external binary search tree of **Natarajan & Mittal, "Fast Concurrent
//! Lock-Free Binary Search Trees", PPoPP 2014**.
//!
//! ## The algorithm in one paragraph
//!
//! The tree is *external*: user keys live only in leaves; internal nodes
//! route. Conflicting operations coordinate by **marking edges, not
//! nodes**: two bits stolen from each child pointer distinguish a
//! *flagged* edge (its head leaf is being deleted) from a *tagged* edge
//! (its tail is being spliced out while its head is hoisted). An insert
//! publishes a two-node subtree with a **single CAS**; a delete
//! linearizes with one CAS (flagging the victim's incoming edge) and
//! physically splices with one BTS plus one CAS at the *ancestor* — the
//! deepest node above the victim whose incoming edge is untagged — which
//! can excise an entire chain of logically deleted nodes in one step.
//! There are no operation descriptors, helping never allocates, and only
//! deletes are ever helped.
//!
//! ## Entry points
//!
//! * [`NmTreeSet`] — the paper's dictionary ADT (search/insert/delete).
//! * [`NmTreeMap`] — the same tree carrying a value per key.
//!
//! Both are generic over the memory-reclamation scheme (this paper
//! assumes a garbage-collected world; we default to the from-scratch
//! epoch-based reclaimer in [`nmbst_reclaim`]):
//!
//! ```
//! use nmbst::NmTreeSet;
//! use nmbst_reclaim::Leaky;
//!
//! // Production: epoch-reclaimed (default type parameter).
//! let set: NmTreeSet<u64> = NmTreeSet::new();
//! set.insert(1);
//!
//! // Paper-faithful benchmark mode: leak instead of reclaiming.
//! let bench_set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
//! bench_set.insert(1);
//! ```
//!
//! ## Concurrency guarantees
//!
//! All operations are linearizable (§3.3 of the paper; exercised by the
//! `nmbst-lincheck` history checker in this workspace) and lock-free:
//! some operation always completes in a finite number of steps,
//! regardless of stalled threads.
//!
//! ## Instrumentation and observability
//!
//! With `feature = "instrument"`, per-thread counters in [`stats`]
//! record allocations and atomic instructions per operation, which is
//! how this workspace regenerates Table 1 of the paper (insert: 2
//! allocations, 1 CAS; delete: 0 allocations, 3 atomics — uncontended).
//!
//! Every tree additionally exposes an always-on metrics facade
//! ([`NmTreeMap::metrics`] → [`obs::MetricsSnapshot`], with JSON and
//! Prometheus exposition), and with `feature = "obs"` a per-thread
//! flight recorder of structural events (`obs::FlightRecorder`) — see
//! the [`obs`] module docs.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
mod handle;
mod key;
mod node;
pub mod obs;
mod packed;
mod pool;
mod set;
mod shard;
pub mod stats;
mod tree;

pub use handle::{BatchRun, MapHandle, SetHandle, DEFAULT_REPIN_EVERY};
pub use key::Key;
pub use node::LEAF_CAP;
pub use obs::{LatencyConfig, OpClass};
pub use packed::TagMode;
pub use pool::{PoolConfig, DEFAULT_POOL_CAPACITY};
pub use set::NmTreeSet;
pub use shard::{
    BatchCmd, BatchScratch, BatchVerdict, ShardedMap, ShardedMapHandle, ShardedSet,
    ShardedSetHandle, DEFAULT_SHARD_COUNT,
};
pub use tree::{NmTreeMap, RestartPolicy, TreeConfig, TreeShape};

// Re-export the reclamation entry points users need to name the tree's
// type parameter, plus the pool stats surfaced in metrics snapshots.
pub use nmbst_reclaim::{Ebr, HazardEras, Leaky, PoolStats, Reclaim};
