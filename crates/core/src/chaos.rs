//! Deterministic fault injection for the helping protocol
//! (`feature = "chaos"`).
//!
//! The bugs that matter in the Natarajan–Mittal tree live in rare
//! interleavings of the three-step delete (flag → tag → splice,
//! Algorithm 3–4) and the paths that help it. This module names every
//! atomic step of the algorithm as an **injection point** and routes each
//! through a thread-local hook, so tests can *construct* the in-flight
//! states the protocol must survive instead of hoping a race produces
//! them:
//!
//! | Point | Atomic step guarded |
//! |---|---|
//! | [`Point::SeekRetry`] | an operation looping back to re-seek after a failed CAS or a lost splice |
//! | [`Point::InsertPublish`] | insert's single publishing CAS (Algorithm 2, line 51) |
//! | [`Point::DeleteInject`] | delete's injection CAS — flagging the victim's incoming edge (Algorithm 3, line 73) |
//! | [`Point::Tag`] | the cleanup routine's BTS on the edge to hoist (Algorithm 4, line 106) |
//! | [`Point::Splice`] | the cleanup routine's splice CAS at the ancestor (Algorithm 4, lines 107–108) |
//! | [`Point::Retire`] | handing the detached chain to the reclaimer after a won splice |
//! | [`Point::Recycle`] | a retired node's recycle deferral handing its block back to the pool (fires on the thread *running* the deferral, after the grace period, not on the retiring op) |
//! | [`Point::BatchFinger`] | a batch op about to revalidate its finger anchor ([`Action::Abandon`] skips the anchor and forces a full root descent — a deterministic finger *miss*, not an abandoned op) |
//!
//! Each point fires **immediately before** its atomic step executes, so
//! returning [`Action::Abandon`] from a hook stops the operation with
//! everything *up to* that step done and nothing after — e.g. abandoning
//! at [`Point::Tag`] yields a delete that performed its injection CAS and
//! then stopped, which is exactly what a preempted deleter looks like to
//! every helper.
//!
//! # Cost
//!
//! With the feature **off** every point compiles to an empty inline
//! function returning [`Action::Continue`]; no atomic, branch, or
//! thread-local access is added to any hot path. With the feature **on**
//! but no hook installed, a point is one thread-local borrow and a
//! branch.
//!
//! # Hooks
//!
//! A hook is any `FnMut(Point) -> Action` installed on the current
//! thread with `with_hook`. The hook may *block* (stall the operation
//! until another thread releases it), *yield*, or return
//! [`Action::Abandon`]. Abandoned operations return early with a
//! conservative result (`insert` → `false`, `remove` → its linearized
//! result if the injection CAS already succeeded, `None`/`false`
//! otherwise); only install plans on threads whose results the test
//! interprets accordingly.
//!
//! `FaultPlan` covers the common cases declaratively; the schedule
//! explorer in `nmbst-lincheck` installs a custom hook that parks every
//! point on a seeded cooperative scheduler.
//!
//! # Bug switches
//!
//! `set_bug` re-introduces known historical bugs on the current thread
//! (e.g. [`Bug::DropFlagOnSplice`], the Algorithm 4 line 107–108
//! flag-copy). They exist so the schedule explorer can demonstrate it
//! *would* catch the bug class; see `tests/chaos_explorer.rs`.
//! Thread-local on purpose: a buggy splice performed by a *helper*
//! thread without the switch stays correct, mirroring a partial
//! deployment of a broken patch — enable it on every thread of a
//! scenario to make the bug unconditional.

#[cfg(feature = "chaos")]
use std::cell::{Cell, RefCell};
#[cfg(feature = "chaos")]
use std::sync::{Arc, Condvar, Mutex};

/// A named injection point: one atomic step of the algorithm. See the
/// [module docs](self) for the step each point guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Point {
    /// An operation loops back to re-seek (failed CAS or lost splice).
    SeekRetry,
    /// Insert's publishing CAS is about to execute.
    InsertPublish,
    /// Delete's injection CAS (the flag) is about to execute.
    DeleteInject,
    /// Cleanup's tag (BTS) on the hoisted edge is about to execute.
    Tag,
    /// Cleanup's splice CAS at the ancestor is about to execute.
    Splice,
    /// A won splice is about to retire the detached chain.
    Retire,
    /// A recycle deferral is about to return a reclaimed node's slot to
    /// the tree's pool. [`Action::Abandon`] abandons the slot in place
    /// instead (the free-list-overflow fall-through path — arena memory,
    /// reclaimed when the tree drops), which lets tests pin down *where*
    /// a given slot may reappear.
    Recycle,
    /// A batch operation is about to revalidate the previous op's seek
    /// record as its descent anchor. Unlike every other point,
    /// [`Action::Abandon`] here does not abandon the operation — it skips
    /// the anchor and descends from the root (a forced, deterministic
    /// finger miss). The operation's result is unaffected either way.
    BatchFinger,
}

/// What an operation does after its hook inspected an injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Execute the atomic step normally.
    Continue,
    /// Stop the operation here: everything before this point's step has
    /// happened, nothing after it will. The structure is left in a
    /// protocol-consistent in-flight state for helpers to finish.
    Abandon,
}

/// Consults the current thread's hook at injection point `p`.
///
/// This is the only entry point the tree calls; everything else in this
/// module is plumbing for installing hooks.
#[cfg(feature = "chaos")]
#[inline]
pub(crate) fn hit(p: Point) -> Action {
    // Take the hook out while running it: a hook that re-enters the tree
    // (e.g. to inspect membership mid-stall) must not observe itself.
    // `try_with`, not `with`: [`Point::Recycle`] fires from recycle
    // deferrals, which a reclaimer's own thread-local destructor can run
    // during thread exit — after this TLS slot is gone. No hook can be
    // installed at that point, so `Continue` is the only right answer.
    let Ok(Some(mut hook)) = HOOK.try_with(|h| h.borrow_mut().take()) else {
        return Action::Continue;
    };
    let action = hook(p);
    let _ = HOOK.try_with(|h| {
        if h.borrow().is_none() {
            *h.borrow_mut() = Some(hook);
        }
    });
    action
}

/// No-op twin compiled when the feature is off: the call site folds away.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn hit(_p: Point) -> Action {
    Action::Continue
}

/// The installed hook's type: boxed so plans and closures store uniformly.
#[cfg(feature = "chaos")]
type Hook = Box<dyn FnMut(Point) -> Action>;

#[cfg(feature = "chaos")]
thread_local! {
    static HOOK: RefCell<Option<Hook>> = const { RefCell::new(None) };
    static BUGS: Cell<u32> = const { Cell::new(0) };
}

/// Runs `f` with `hook` installed as this thread's injection-point hook,
/// restoring the previously installed hook (if any) afterwards.
#[cfg(feature = "chaos")]
pub fn with_hook<T>(hook: impl FnMut(Point) -> Action + 'static, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Box<dyn FnMut(Point) -> Action>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            HOOK.with(|h| *h.borrow_mut() = prev);
        }
    }
    let prev = HOOK.take();
    HOOK.with(|h| *h.borrow_mut() = Some(Box::new(hook)));
    let _restore = Restore(prev);
    f()
}

/// Known historical bugs that can be re-introduced per thread with
/// `set_bug` to validate that the test infrastructure catches them.
/// Inert (never enabled) unless `feature = "chaos"` is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    /// Splice with a clean edge instead of copying the hoisted edge's
    /// flag (Algorithm 4, lines 107–108). The flag marks a leaf some
    /// *other* delete already claimed; dropping it makes that delete's
    /// cleanup swap roles and excise the wrong subtree — deleted keys
    /// resurface and innocent siblings vanish.
    DropFlagOnSplice,
}

#[cfg(feature = "chaos")]
impl Bug {
    fn mask(self) -> u32 {
        match self {
            Bug::DropFlagOnSplice => 1 << 0,
        }
    }
}

/// Enables or disables `bug` on the current thread.
#[cfg(feature = "chaos")]
pub fn set_bug(bug: Bug, enabled: bool) {
    BUGS.with(|b| {
        let m = bug.mask();
        b.set(if enabled { b.get() | m } else { b.get() & !m });
    });
}

/// `true` if `bug` is enabled on the current thread.
#[cfg(feature = "chaos")]
#[inline]
pub(crate) fn bug_enabled(bug: Bug) -> bool {
    BUGS.with(|b| b.get() & bug.mask() != 0)
}

/// No-op twin compiled when the feature is off: bugs can never be on.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn bug_enabled(_bug: Bug) -> bool {
    false
}

/// A declarative per-thread hook: a list of one-shot rules, each firing
/// at the n-th arrival at its injection point.
///
/// ```
/// # #[cfg(feature = "chaos")] {
/// use nmbst::chaos::{FaultPlan, Point};
/// use nmbst::NmTreeSet;
///
/// let set: NmTreeSet<u64> = NmTreeSet::new();
/// set.insert(7);
/// // A delete that flags its victim and then stops before cleanup:
/// let flagged = FaultPlan::new()
///     .abandon_at(Point::Tag)
///     .run(|| set.remove(&7));
/// assert!(flagged, "injection CAS succeeded: the delete owns the leaf");
/// // Not yet spliced: searches still find the leaf, and any operation
/// // that trips over the flagged edge will help finish the delete.
/// assert!(set.contains(&7));
/// # }
/// ```
#[cfg(feature = "chaos")]
#[derive(Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
}

#[cfg(feature = "chaos")]
struct Rule {
    point: Point,
    /// Arrivals at `point` still to skip before firing.
    skip: u32,
    what: Fault,
    spent: bool,
}

#[cfg(feature = "chaos")]
enum Fault {
    Abandon,
    Yield(u32),
    Stall(StallCell),
}

#[cfg(feature = "chaos")]
impl FaultPlan {
    /// An empty plan (every point continues normally).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Abandon the operation at its first arrival at `point`.
    pub fn abandon_at(self, point: Point) -> Self {
        self.abandon_at_nth(point, 0)
    }

    /// Abandon the operation at its `n`-th (0-based) arrival at `point`.
    pub fn abandon_at_nth(mut self, point: Point, n: u32) -> Self {
        self.rules.push(Rule {
            point,
            skip: n,
            what: Fault::Abandon,
            spent: false,
        });
        self
    }

    /// Yield the OS scheduler `times` times at the first arrival at
    /// `point` (a coarse "lose your quantum here" fault).
    pub fn yield_at(mut self, point: Point, times: u32) -> Self {
        self.rules.push(Rule {
            point,
            skip: 0,
            what: Fault::Yield(times),
            spent: false,
        });
        self
    }

    /// Block at the first arrival at `point` until `cell` is
    /// [resumed](StallCell::resume) by another thread: a deterministic
    /// mid-flight preemption.
    pub fn stall_at(mut self, point: Point, cell: StallCell) -> Self {
        self.rules.push(Rule {
            point,
            skip: 0,
            what: Fault::Stall(cell),
            spent: false,
        });
        self
    }

    /// Runs `f` with this plan installed as the thread's hook.
    pub fn run<T>(mut self, f: impl FnOnce() -> T) -> T {
        with_hook(move |p| self.consult(p), f)
    }

    fn consult(&mut self, p: Point) -> Action {
        for rule in self.rules.iter_mut() {
            if rule.spent || rule.point != p {
                continue;
            }
            if rule.skip > 0 {
                rule.skip -= 1;
                continue;
            }
            rule.spent = true;
            match &rule.what {
                Fault::Abandon => return Action::Abandon,
                Fault::Yield(times) => {
                    for _ in 0..*times {
                        std::thread::yield_now();
                    }
                }
                Fault::Stall(cell) => cell.wait(),
            }
            break;
        }
        Action::Continue
    }
}

/// A resumable parking spot shared between a stalled operation and the
/// test controlling it (see [`FaultPlan::stall_at`]).
#[cfg(feature = "chaos")]
#[derive(Clone, Default)]
pub struct StallCell {
    inner: Arc<(Mutex<StallState>, Condvar)>,
}

#[cfg(feature = "chaos")]
#[derive(Default)]
struct StallState {
    resumed: bool,
    arrived: bool,
}

#[cfg(feature = "chaos")]
impl StallCell {
    /// A cell in the "will stall" state.
    pub fn new() -> Self {
        StallCell::default()
    }

    /// Releases the stalled thread (idempotent; may be called before the
    /// stall is reached, in which case the stall is skipped).
    pub fn resume(&self) {
        let (lock, cv) = &*self.inner;
        lock.lock().unwrap().resumed = true;
        cv.notify_all();
    }

    /// Blocks until some operation has reached the stall point. Lets a
    /// test order its own steps *after* the stalled thread is provably
    /// parked mid-operation, instead of sleeping and hoping.
    pub fn wait_arrival(&self) {
        let (lock, cv) = &*self.inner;
        let mut st = lock.lock().unwrap();
        while !st.arrived {
            st = cv.wait(st).unwrap();
        }
    }

    fn wait(&self) {
        let (lock, cv) = &*self.inner;
        let mut st = lock.lock().unwrap();
        st.arrived = true;
        cv.notify_all();
        while !st.resumed {
            st = cv.wait(st).unwrap();
        }
    }
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn no_hook_continues() {
        assert_eq!(hit(Point::Tag), Action::Continue);
    }

    #[test]
    fn with_hook_routes_points_and_restores() {
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = std::rc::Rc::clone(&seen);
        with_hook(
            move |p| {
                seen2.borrow_mut().push(p);
                Action::Continue
            },
            || {
                assert_eq!(hit(Point::Splice), Action::Continue);
                assert_eq!(hit(Point::Retire), Action::Continue);
            },
        );
        assert_eq!(*seen.borrow(), vec![Point::Splice, Point::Retire]);
        // Uninstalled afterwards.
        assert_eq!(hit(Point::Splice), Action::Continue);
        assert!(seen.borrow().len() == 2);
    }

    #[test]
    fn nested_hooks_restore_outer() {
        let outer_hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let o = std::rc::Rc::clone(&outer_hits);
        with_hook(
            move |_| {
                o.set(o.get() + 1);
                Action::Continue
            },
            || {
                hit(Point::Tag);
                with_hook(
                    |_| Action::Abandon,
                    || assert_eq!(hit(Point::Tag), Action::Abandon),
                );
                hit(Point::Tag);
            },
        );
        assert_eq!(outer_hits.get(), 2);
    }

    #[test]
    fn plan_abandons_at_nth_arrival() {
        let mut plan = FaultPlan::new().abandon_at_nth(Point::SeekRetry, 2);
        assert_eq!(plan.consult(Point::SeekRetry), Action::Continue);
        assert_eq!(plan.consult(Point::Tag), Action::Continue);
        assert_eq!(plan.consult(Point::SeekRetry), Action::Continue);
        assert_eq!(plan.consult(Point::SeekRetry), Action::Abandon);
        // One-shot: spent rules never fire again.
        assert_eq!(plan.consult(Point::SeekRetry), Action::Continue);
    }

    #[test]
    fn stall_cell_resumed_from_other_thread() {
        let cell = StallCell::new();
        let released = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let c = cell.clone();
            let released = &released;
            s.spawn(move || {
                c.wait();
                released.fetch_add(1, Ordering::SeqCst);
            });
            std::thread::yield_now();
            assert_eq!(released.load(Ordering::SeqCst), 0);
            cell.resume();
        });
        assert_eq!(released.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn bug_switch_is_thread_local() {
        set_bug(Bug::DropFlagOnSplice, true);
        assert!(bug_enabled(Bug::DropFlagOnSplice));
        std::thread::scope(|s| {
            s.spawn(|| assert!(!bug_enabled(Bug::DropFlagOnSplice)));
        });
        set_bug(Bug::DropFlagOnSplice, false);
        assert!(!bug_enabled(Bug::DropFlagOnSplice));
    }
}
