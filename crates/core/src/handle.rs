//! Pin-amortizing operation handles.
//!
//! Every plain-API call pins the reclaimer on entry and unpins on exit.
//! Under EBR a pin is a thread-local registry lookup plus a sequentially
//! consistent fence — cheap, but charged on *every* operation, and the
//! paper's per-op cost model (Table 1) never pays it. A handle hoists
//! that cost out of the loop: it holds one guard and one seek-record
//! scratch across many operations, re-pinning every
//! [`repin_every`](MapHandle::with_repin_every) ops so the global epoch
//! can still advance and retired nodes still get freed.
//!
//! Handles borrow the tree and are single-threaded cursors (with the
//! default [`Ebr`] reclaimer the guard is `!Send`, so the handle is
//! too); clone-free, allocation-free, and safe — every unsafe internal
//! entry point is sealed behind the guard the handle itself manages.

use crate::obs::{self, EventKind, OpClass, PendingLat, PendingOps};
use crate::pool::NodeCache;
use crate::tree::{NmTreeMap, SeekRecord};
use nmbst_reclaim::{Ebr, Reclaim};

/// How many operations a handle performs on one guard before re-pinning,
/// unless overridden with [`MapHandle::with_repin_every`].
///
/// Re-pinning refreshes the thread's announced epoch; until then every
/// node retired anywhere in the tree since the pin stays unreclaimable.
/// 64 keeps that window to a few cache lines of garbage per thread while
/// making the pin cost ~1.5% of its per-op price.
pub const DEFAULT_REPIN_EVERY: u32 = 64;

/// A pin-amortizing cursor over an [`NmTreeMap`].
///
/// Obtained from [`NmTreeMap::handle`]. All operations take `&mut self`:
/// the handle owns a reusable reclamation guard and seek-record scratch,
/// which is exactly what makes it faster than the plain API in a hot
/// loop. For cross-thread sharing, give each thread its own handle.
///
/// # Examples
///
/// ```
/// use nmbst::NmTreeMap;
///
/// let map: NmTreeMap<u64, u64> = NmTreeMap::new();
/// let mut h = map.handle();
/// for k in 0..1000 {
///     h.insert(k, k * 2);
/// }
/// assert_eq!(h.get(&500), Some(1000));
/// assert!(h.remove(&500));
/// assert!(!h.contains(&500));
/// ```
pub struct MapHandle<'t, K, V, R: Reclaim = Ebr> {
    tree: &'t NmTreeMap<K, V, R>,
    /// `None` only between construction/[`unpin`](Self::unpin) and the
    /// next operation.
    guard: Option<R::Guard<'t>>,
    /// Scratch for the tree's seek phase, reused across operations.
    rec: SeekRecord<K, V>,
    /// Node-allocation cache over the tree's pool: keeps a private stash
    /// of recycled blocks so insert-heavy loops skip the shared free
    /// list. Its `Drop` gives the stash back.
    cache: NodeCache<'t>,
    ops_since_repin: u32,
    repin_every: u32,
    /// Metrics batched in plain fields, flushed into the tree's sharded
    /// counters on re-pin/unpin/drop so the per-op path stays atomic-free.
    pending: PendingOps,
    /// Sampled latency durations batched the same way (flushed into the
    /// tree's concurrent histograms alongside `pending`). Zero-sized
    /// when `feature = "obs-latency"` is off.
    pending_lat: PendingLat,
    /// `true` while `rec` holds a record produced under the *current*
    /// guard — the validity bit of the batch-op finger. Cleared whenever
    /// the guard is dropped or refreshed ([`unpin`](Self::unpin) /
    /// [`repin`](Self::repin)): `seek_from`'s contract needs the record
    /// and the guard to be continuous, and that is exactly what this
    /// tracks. Set by batch ops after each record-producing seek.
    finger: bool,
}

impl<'t, K, V, R> MapHandle<'t, K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    pub(crate) fn new(tree: &'t NmTreeMap<K, V, R>) -> Self {
        MapHandle {
            tree,
            guard: None,
            rec: SeekRecord::empty(),
            cache: tree.handle_cache(),
            ops_since_repin: 0,
            repin_every: DEFAULT_REPIN_EVERY,
            pending: PendingOps::default(),
            pending_lat: PendingLat::default(),
            finger: false,
        }
    }

    /// Sets how many operations run on one guard before the handle
    /// re-pins (default [`DEFAULT_REPIN_EVERY`]). Larger values shave
    /// pin overhead but lengthen the window during which concurrently
    /// retired nodes cannot be reclaimed; `0` re-pins on every op,
    /// reproducing the plain API's behavior.
    pub fn with_repin_every(mut self, ops: u32) -> Self {
        self.repin_every = ops;
        self
    }

    /// The map this handle operates on.
    pub fn tree(&self) -> &'t NmTreeMap<K, V, R> {
        self.tree
    }

    /// Drops the current guard immediately, letting reclamation advance
    /// past this thread. Call before parking or blocking with the handle
    /// still alive; the next operation re-pins transparently.
    pub fn unpin(&mut self) {
        self.guard = None;
        self.finger = false;
        self.ops_since_repin = 0;
        self.flush_pending();
    }

    /// Forces a fresh pin now, regardless of the re-pin interval.
    pub fn repin(&mut self) {
        // Drop the old guard *before* pinning anew: pinning is
        // re-entrant, so a pin taken while the old guard is still alive
        // would inherit — and keep announcing — the stale epoch.
        self.guard = None;
        self.finger = false;
        self.guard = Some(self.tree.reclaim.pin());
        self.ops_since_repin = 0;
        obs::emit(EventKind::Repin);
        self.flush_pending();
    }

    /// Publishes the batched operation counts into the tree's metrics
    /// and the batched pool hit/miss counts into the pool's stats.
    fn flush_pending(&mut self) {
        self.tree.metrics.add_pending(&self.pending);
        self.pending.clear();
        self.tree.metrics.flush_pending_lat(&mut self.pending_lat);
        self.cache.flush_counters();
    }

    /// Publishes this handle's batched operation counts (and node-cache
    /// counters) into the tree's metrics shards *now*, without touching
    /// the guard or the finger.
    ///
    /// Without this, batched counts only reach
    /// [`metrics()`](NmTreeMap::metrics) on re-pin, [`unpin`](Self::unpin)
    /// or drop — so a snapshot can lag a live handle by up to
    /// `repin_every` operations (64 by default), and a handle with a
    /// large budget that never re-pins is invisible for its whole
    /// lifetime. Long-lived workers (e.g. server connection loops) should
    /// call this on a sampling tick; between ticks the staleness bound is
    /// the number of operations since the last flush/re-pin.
    #[inline]
    pub fn flush_stats(&mut self) {
        self.flush_pending();
    }

    /// Charges one operation against the re-pin budget, (re)pinning if
    /// the guard is missing or expired.
    #[inline]
    fn tick(&mut self) {
        if self.guard.is_none() || self.ops_since_repin >= self.repin_every {
            self.repin();
        }
        self.ops_since_repin += 1;
    }

    /// [`NmTreeMap::insert`] through this handle's guard.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.tick();
        let t = self.tree.metrics.op_timer_buffered(&mut self.pending_lat);
        let guard = self.guard.as_ref().expect("pinned by tick");
        // SAFETY: `guard` pins this tree's reclaimer (pinned from
        // `self.tree` in `repin`) and lives across the call; `rec` is
        // scratch; `cache` was built over this tree's pool.
        let added = unsafe {
            self.tree
                .insert_in(key, value, guard, &mut self.rec, &mut self.cache)
        };
        self.pending.inserts += 1;
        self.pending.inserted += u64::from(added);
        self.tree
            .metrics
            .op_finish_buffered(OpClass::Insert, t, &mut self.pending_lat);
        added
    }

    /// [`NmTreeMap::remove`] through this handle's guard.
    #[inline]
    pub fn remove(&mut self, key: &K) -> bool {
        self.tick();
        let t = self.tree.metrics.op_timer_buffered(&mut self.pending_lat);
        let guard = self.guard.as_ref().expect("pinned by tick");
        // SAFETY: as in `insert`.
        let removed = unsafe {
            self.tree
                .remove_in(key, |_| (), guard, &mut self.rec, &mut self.cache)
        }
        .is_some();
        self.pending.removes += 1;
        self.pending.removed += u64::from(removed);
        self.tree
            .metrics
            .op_finish_buffered(OpClass::Remove, t, &mut self.pending_lat);
        removed
    }

    /// [`NmTreeMap::remove_get`] through this handle's guard.
    #[inline]
    pub fn remove_get(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.tick();
        let t = self.tree.metrics.op_timer_buffered(&mut self.pending_lat);
        let guard = self.guard.as_ref().expect("pinned by tick");
        // SAFETY: as in `insert`.
        let removed = unsafe {
            self.tree
                .remove_in(key, V::clone, guard, &mut self.rec, &mut self.cache)
        };
        self.pending.removes += 1;
        self.pending.removed += u64::from(removed.is_some());
        self.tree
            .metrics
            .op_finish_buffered(OpClass::Remove, t, &mut self.pending_lat);
        removed
    }

    /// [`NmTreeMap::contains`] through this handle's guard.
    #[inline]
    pub fn contains(&mut self, key: &K) -> bool {
        self.tick();
        let t = self.tree.metrics.op_timer_buffered(&mut self.pending_lat);
        let guard = self.guard.as_ref().expect("pinned by tick");
        self.pending.searches += 1;
        // SAFETY: as in `insert`.
        let found = unsafe { self.tree.contains_in(key, guard) };
        self.tree
            .metrics
            .op_finish_buffered(OpClass::Get, t, &mut self.pending_lat);
        found
    }

    /// [`NmTreeMap::with_value`] through this handle's guard.
    #[inline]
    pub fn with_value<T>(&mut self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        self.tick();
        let t = self.tree.metrics.op_timer_buffered(&mut self.pending_lat);
        let guard = self.guard.as_ref().expect("pinned by tick");
        self.pending.searches += 1;
        // SAFETY: as in `insert`.
        let out = unsafe { self.tree.with_value_in(key, f, guard) };
        self.tree
            .metrics
            .op_finish_buffered(OpClass::Get, t, &mut self.pending_lat);
        out
    }

    /// [`NmTreeMap::get`] through this handle's guard.
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.with_value(key, V::clone)
    }

    /// Inserts every pair of `items`, returning how many keys were added.
    ///
    /// The batch is stable-sorted by key first, then each op descends
    /// from the previous op's seek record — the *finger* — when it
    /// revalidates (the same anchor check as the local-restart seek; see
    /// DESIGN.md), from the root otherwise. Sorted neighbors share most
    /// of their access path, so
    /// the amortized descent is O(1 + log of the inter-key distance)
    /// instead of O(log n). Semantics are identical to calling
    /// [`insert`](Self::insert) on each pair in input order: duplicate
    /// keys keep the first occurrence (stable sort preserves input order
    /// among equals; later ones are rejected by the tree).
    ///
    /// Finger hits and misses are counted in the tree's metrics
    /// ([`MetricsSnapshot::finger_hits`](crate::obs::MetricsSnapshot)).
    ///
    /// # Examples
    ///
    /// ```
    /// use nmbst::NmTreeMap;
    ///
    /// let map: NmTreeMap<u64, u64> = NmTreeMap::new();
    /// let mut h = map.handle();
    /// assert_eq!(h.insert_batch((0..100).map(|k| (k, k * 2))), 100);
    /// assert_eq!(h.get(&42), Some(84));
    /// ```
    pub fn insert_batch(&mut self, items: impl IntoIterator<Item = (K, V)>) -> usize {
        // Whole-call timing: one clock pair amortized over the batch.
        let t = self.tree.metrics.call_timer();
        let mut items: Vec<(K, V)> = items.into_iter().collect();
        // Already-ascending input — the common bulk-ingest shape — skips
        // the sort; equal neighbors are fine (first one wins either way).
        if !items.windows(2).all(|w| w[0].0 <= w[1].0) {
            items.sort_by(|a, b| a.0.cmp(&b.0));
        }
        let mut added = 0;
        for (key, value) in items {
            added += usize::from(self.insert_fingered(key, value));
        }
        self.tree.metrics.op_finish(OpClass::Batch, t);
        added
    }

    /// Removes every key of `keys`, returning how many were present.
    /// Sorted and finger-anchored like [`insert_batch`](Self::insert_batch).
    ///
    /// Removes re-anchor on the splice's surviving sibling, so their
    /// finger hit rate is workload-dependent (a survivor that is a leaf
    /// cannot anchor a descent and the next op pays a root seek).
    pub fn remove_batch(&mut self, keys: impl IntoIterator<Item = K>) -> usize {
        let t = self.tree.metrics.call_timer();
        let mut keys: Vec<K> = keys.into_iter().collect();
        if !keys.is_sorted() {
            keys.sort();
        }
        let mut removed = 0;
        for key in &keys {
            removed += usize::from(self.remove_fingered(key));
        }
        self.tree.metrics.op_finish(OpClass::Batch, t);
        removed
    }

    /// Looks up every key of `keys`, returning the values **in input
    /// order** (the lookups themselves run in sorted, finger-anchored
    /// order like [`insert_batch`](Self::insert_batch)).
    pub fn get_batch(&mut self, keys: impl IntoIterator<Item = K>) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let t = self.tree.metrics.call_timer();
        let keys: Vec<K> = keys.into_iter().collect();
        let out = if keys.is_sorted() {
            // Already-ascending input: sorted order *is* input order, so
            // skip the index pairing and the result scatter entirely.
            keys.iter().map(|key| self.get_fingered(key)).collect()
        } else {
            let mut order: Vec<(usize, &K)> = keys.iter().enumerate().collect();
            order.sort_by(|a, b| a.1.cmp(b.1));
            let mut out: Vec<Option<V>> = Vec::new();
            out.resize_with(order.len(), || None);
            for (idx, key) in order {
                out[idx] = self.get_fingered(key);
            }
            out
        };
        self.tree.metrics.op_finish(OpClass::Batch, t);
        out
    }

    /// Starts a mixed-op, finger-anchored batch run: a scoped cursor
    /// whose `get`/`insert`/`remove` are the same finger-anchored loop
    /// bodies the kind-homogeneous batch wrappers use, under one
    /// whole-run [`OpClass::Batch`] latency sample (taken when the run
    /// drops).
    ///
    /// Unlike [`insert_batch`](Self::insert_batch) and friends, a run
    /// does **not** sort: the caller owns op order. Every op is a full
    /// linearizable tree op regardless of order — ordering only decides
    /// how often the finger anchor hits, so issue ops in key-sorted
    /// order when you can (the serving tier's shard-fused executor
    /// sorts each per-shard run before walking it; see
    /// `ShardedMapHandle::execute_batch`).
    pub fn batch_run(&mut self) -> BatchRun<'_, 't, K, V, R> {
        let timer = self.tree.metrics.call_timer();
        BatchRun {
            handle: self,
            timer,
        }
    }

    /// One finger-anchored lookup: the batch loop body.
    #[inline]
    fn get_fingered(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.tick();
        let finger = self.finger;
        let guard = self.guard.as_ref().expect("pinned by tick");
        // SAFETY: as in `insert`; `finger` is true only while `rec`
        // holds a record produced under the current guard.
        let (value, hit) = unsafe {
            self.tree
                .get_from(key, V::clone, guard, &mut self.rec, finger)
        };
        self.finger = true;
        self.pending.searches += 1;
        self.note_finger(hit);
        value
    }

    /// One finger-anchored insert: the batch loop body.
    #[inline]
    fn insert_fingered(&mut self, key: K, value: V) -> bool {
        self.tick();
        let finger = self.finger;
        let guard = self.guard.as_ref().expect("pinned by tick");
        // SAFETY: as in `insert`; `finger` is true only while `rec` holds
        // a record produced under the current guard (cleared on repin).
        let (added, hit) = unsafe {
            self.tree
                .insert_from(key, value, guard, &mut self.rec, &mut self.cache, finger)
        };
        self.finger = true;
        self.pending.inserts += 1;
        self.pending.inserted += u64::from(added);
        self.note_finger(hit);
        added
    }

    /// One finger-anchored remove: the batch loop body.
    #[inline]
    fn remove_fingered(&mut self, key: &K) -> bool {
        self.tick();
        let finger = self.finger;
        let guard = self.guard.as_ref().expect("pinned by tick");
        // SAFETY: as in `insert_fingered`.
        let (removed, hit) = unsafe {
            self.tree
                .remove_from(key, |_| (), guard, &mut self.rec, &mut self.cache, finger)
        };
        self.finger = true;
        self.pending.removes += 1;
        self.pending.removed += u64::from(removed.is_some());
        self.note_finger(hit);
        removed.is_some()
    }

    #[inline]
    fn note_finger(&mut self, hit: bool) {
        self.pending.finger_hits += u64::from(hit);
        self.pending.finger_misses += u64::from(!hit);
    }
}

impl<K, V, R: Reclaim> Drop for MapHandle<'_, K, V, R> {
    fn drop(&mut self) {
        // Flush the batched metrics; a handle abandoned without a final
        // unpin/repin must not lose its counts (or latency samples).
        self.tree.metrics.add_pending(&self.pending);
        self.tree.metrics.flush_pending_lat(&mut self.pending_lat);
    }
}

/// A scoped mixed-op batch cursor over a [`MapHandle`]; see
/// [`MapHandle::batch_run`]. Dropping the run records the whole-run
/// [`OpClass::Batch`] latency sample.
pub struct BatchRun<'h, 't, K, V, R: Reclaim = Ebr> {
    handle: &'h mut MapHandle<'t, K, V, R>,
    timer: obs::LatTimer,
}

impl<K, V, R> BatchRun<'_, '_, K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Finger-anchored [`MapHandle::get`].
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.handle.get_fingered(key)
    }

    /// Finger-anchored [`MapHandle::insert`].
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.handle.insert_fingered(key, value)
    }

    /// Finger-anchored [`MapHandle::remove`].
    #[inline]
    pub fn remove(&mut self, key: &K) -> bool {
        self.handle.remove_fingered(key)
    }
}

impl<K, V, R: Reclaim> Drop for BatchRun<'_, '_, K, V, R> {
    fn drop(&mut self) {
        self.handle
            .tree
            .metrics
            .op_finish(OpClass::Batch, self.timer);
    }
}

impl<K, V, R> std::fmt::Debug for MapHandle<'_, K, V, R>
where
    R: Reclaim,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapHandle")
            .field("pinned", &self.guard.is_some())
            .field("ops_since_repin", &self.ops_since_repin)
            .field("repin_every", &self.repin_every)
            .finish_non_exhaustive()
    }
}

/// A pin-amortizing cursor over an [`NmTreeSet`](crate::NmTreeSet) —
/// [`MapHandle`] for the set front end.
///
/// Obtained from [`NmTreeSet::handle`](crate::NmTreeSet::handle).
///
/// # Examples
///
/// ```
/// use nmbst::NmTreeSet;
///
/// let set: NmTreeSet<u64> = NmTreeSet::new();
/// let mut h = set.handle();
/// assert!(h.insert(7));
/// assert!(h.contains(&7));
/// assert!(h.remove(&7));
/// ```
pub struct SetHandle<'t, K, R: Reclaim = Ebr> {
    inner: MapHandle<'t, K, (), R>,
}

impl<'t, K, R> SetHandle<'t, K, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    pub(crate) fn new(map: &'t NmTreeMap<K, (), R>) -> Self {
        SetHandle {
            inner: MapHandle::new(map),
        }
    }

    /// See [`MapHandle::with_repin_every`].
    pub fn with_repin_every(mut self, ops: u32) -> Self {
        self.inner = self.inner.with_repin_every(ops);
        self
    }

    /// See [`MapHandle::unpin`].
    pub fn unpin(&mut self) {
        self.inner.unpin();
    }

    /// See [`MapHandle::repin`].
    pub fn repin(&mut self) {
        self.inner.repin();
    }

    /// Publishes batched operation counts into the tree's metrics shards
    /// now; see [`MapHandle::flush_stats`] for the staleness contract.
    #[inline]
    pub fn flush_stats(&mut self) {
        self.inner.flush_stats();
    }

    /// The paper's *insert* through this handle's guard.
    #[inline]
    pub fn insert(&mut self, key: K) -> bool {
        self.inner.insert(key, ())
    }

    /// The paper's *delete* through this handle's guard.
    #[inline]
    pub fn remove(&mut self, key: &K) -> bool {
        self.inner.remove(key)
    }

    /// The paper's *search* through this handle's guard.
    #[inline]
    pub fn contains(&mut self, key: &K) -> bool {
        self.inner.contains(key)
    }

    /// Inserts every key of `keys`, finger-anchored; returns how many
    /// were added. See [`MapHandle::insert_batch`].
    ///
    /// ```
    /// use nmbst::NmTreeSet;
    ///
    /// let set: NmTreeSet<u64> = NmTreeSet::new();
    /// let mut h = set.handle();
    /// assert_eq!(h.insert_batch(0..64), 64);
    /// assert_eq!(h.remove_batch((0..64).step_by(2)), 32);
    /// assert_eq!(h.contains_batch([1, 2, 3]), vec![true, false, true]);
    /// assert!(set.metrics().finger_hits > 0);
    /// ```
    pub fn insert_batch(&mut self, keys: impl IntoIterator<Item = K>) -> usize {
        self.inner.insert_batch(keys.into_iter().map(|k| (k, ())))
    }

    /// Removes every key of `keys`, finger-anchored; returns how many
    /// were present. See [`MapHandle::remove_batch`].
    pub fn remove_batch(&mut self, keys: impl IntoIterator<Item = K>) -> usize {
        self.inner.remove_batch(keys)
    }

    /// Membership of every key of `keys`, **in input order**, the lookups
    /// running in sorted finger-anchored order. See
    /// [`MapHandle::get_batch`].
    pub fn contains_batch(&mut self, keys: impl IntoIterator<Item = K>) -> Vec<bool> {
        self.inner
            .get_batch(keys)
            .into_iter()
            .map(|v| v.is_some())
            .collect()
    }
}

impl<K, R> std::fmt::Debug for SetHandle<'_, K, R>
where
    R: Reclaim,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetHandle")
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, NmTreeSet};
    use nmbst_reclaim::{Ebr, Leaky};

    #[test]
    fn handle_matches_plain_api_semantics() {
        let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        let mut h = map.handle();
        assert!(h.insert(1, 10));
        assert!(!h.insert(1, 11)); // duplicate rejected
        assert_eq!(h.get(&1), Some(10));
        assert_eq!(h.with_value(&1, |v| v + 1), Some(11));
        assert!(h.contains(&1));
        assert_eq!(h.remove_get(&1), Some(10));
        assert!(!h.remove(&1));
        assert!(!h.contains(&1));
        // The plain API sees the handle's effects and vice versa.
        map.insert(2, 20);
        assert_eq!(h.get(&2), Some(20));
        h.insert(3, 30);
        assert_eq!(map.get(&3), Some(30));
    }

    #[test]
    fn handle_model_check_with_aggressive_repin() {
        // repin_every = 0 re-pins on every op; interleave handle and
        // plain-API calls against a model.
        let mut model = std::collections::BTreeSet::new();
        let map: NmTreeMap<u64, (), Ebr> = NmTreeMap::new();
        let mut h = map.handle().with_repin_every(0);
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        for i in 0..4000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 64;
            let via_handle = i % 2 == 0;
            match state % 3 {
                0 => {
                    let got = if via_handle {
                        h.insert(key, ())
                    } else {
                        map.insert(key, ())
                    };
                    assert_eq!(got, model.insert(key), "insert {key}");
                }
                1 => {
                    let got = if via_handle {
                        h.remove(&key)
                    } else {
                        map.remove(&key)
                    };
                    assert_eq!(got, model.remove(&key), "remove {key}");
                }
                _ => {
                    let got = if via_handle {
                        h.contains(&key)
                    } else {
                        map.contains(&key)
                    };
                    assert_eq!(got, model.contains(&key), "contains {key}");
                }
            }
        }
    }

    #[test]
    fn set_handle_round_trip() {
        let set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
        let mut h = set.handle();
        for k in 0..100 {
            assert!(h.insert(k));
        }
        for k in 0..100 {
            assert!(h.contains(&k));
        }
        for k in (0..100).step_by(2) {
            assert!(h.remove(&k));
        }
        h.unpin();
        for k in 0..100 {
            assert_eq!(h.contains(&k), k % 2 == 1);
        }
        assert_eq!(set.count(), 50);
    }

    #[test]
    fn batch_ops_match_model() {
        // Batches against a BTreeMap model: duplicates, unsorted input,
        // overlap between insert and remove batches.
        let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        let mut model = std::collections::BTreeMap::new();
        let mut h = map.handle();

        let items: Vec<(u64, u64)> = vec![(5, 50), (1, 10), (9, 90), (1, 11), (3, 30), (5, 51)];
        let mut added = 0;
        for (k, v) in &items {
            if !model.contains_key(k) {
                model.insert(*k, *v);
                added += 1;
            }
        }
        assert_eq!(h.insert_batch(items), added);
        assert_eq!(h.get(&1), Some(10), "first duplicate wins");
        assert_eq!(h.get(&5), Some(50));

        assert_eq!(h.insert_batch((0..32).map(|k| (k, k))), 32 - model.len());
        for k in 0..32 {
            model.entry(k).or_insert(k);
        }

        let doomed: Vec<u64> = vec![31, 2, 2, 19, 100];
        let mut removed = 0;
        for k in &doomed {
            removed += usize::from(model.remove(k).is_some());
        }
        assert_eq!(h.remove_batch(doomed), removed);

        // get_batch answers in INPUT order even though lookups run
        // sorted.
        let probes: Vec<u64> = vec![9, 0, 100, 2, 31, 5];
        let got = h.get_batch(probes.clone());
        let want: Vec<Option<u64>> = probes.iter().map(|k| model.get(k).copied()).collect();
        assert_eq!(got, want);

        drop(h);
        for (k, v) in &model {
            assert_eq!(map.get(k), Some(*v));
        }
        assert_eq!(map.count(), model.len());
    }

    #[test]
    fn batch_finger_hits_are_counted() {
        let map: NmTreeMap<u64, (), Ebr> = NmTreeMap::new();
        {
            let mut h = map.handle();
            assert_eq!(h.insert_batch((0..200).map(|k| (k, ()))), 200);
        }
        let m = map.metrics();
        assert!(
            m.finger_hits > 100,
            "sorted batch must mostly ride the finger: {} hits / {} misses",
            m.finger_hits,
            m.finger_misses
        );
        assert_eq!(m.finger_hits + m.finger_misses, 200);
    }

    /// [`Action::Abandon`] at [`Point::BatchFinger`] is a *forced miss*,
    /// not an abandoned op: every operation must still complete with
    /// identical results, only the descent anchoring changes. This pins
    /// the chaos point's semantics deterministically.
    #[cfg(feature = "chaos")]
    #[test]
    fn batch_finger_abandon_forces_root_descents_only() {
        use crate::chaos::{self, Action, Point};
        use std::cell::Cell;
        use std::rc::Rc;

        let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        let arrivals = Rc::new(Cell::new(0u32));
        let arrivals2 = Rc::clone(&arrivals);
        {
            // A repin would clear the finger mid-run (correct, but it
            // would make the arrival count below depend on the default
            // repin cadence); push it past the test's op count.
            let mut h = map.handle().with_repin_every(1_000);
            chaos::with_hook(
                move |p| {
                    if p == Point::BatchFinger {
                        arrivals2.set(arrivals2.get() + 1);
                        return Action::Abandon;
                    }
                    Action::Continue
                },
                || {
                    assert_eq!(h.insert_batch((0..64).map(|k| (k, k))), 64);
                    assert_eq!(h.remove_batch(0..10), 10);
                    assert_eq!(
                        h.get_batch(vec![5, 15]),
                        vec![None, Some(15)],
                        "ops are never abandoned, only their finger"
                    );
                },
            );
        }
        // The first op of the fresh handle has no finger; every later op
        // reaches the point. 64 + 10 + 2 ops → 75 arrivals.
        assert_eq!(arrivals.get(), 75);
        let m = map.metrics();
        assert_eq!(m.finger_hits, 0, "every finger was abandoned");
        assert_eq!(m.finger_misses, 76);
        assert_eq!(m.size_estimate, 54);
    }

    #[test]
    fn concurrent_handles_one_per_thread() {
        let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let map = &map;
                s.spawn(move || {
                    let mut h = map.handle().with_repin_every(16);
                    for i in 0..1000 {
                        let k = t * 1000 + i;
                        assert!(h.insert(k, k));
                        assert_eq!(h.get(&k), Some(k));
                        if i % 3 == 0 {
                            assert!(h.remove(&k));
                        }
                    }
                });
            }
        });
        let mut expected = 0;
        for t in 0..4u64 {
            for i in 0..1000u64 {
                let present = map.contains(&(t * 1000 + i));
                assert_eq!(present, i % 3 != 0);
                expected += usize::from(present);
            }
        }
        assert_eq!(map.count(), expected);
    }
}
