//! Per-thread operation cost counters (Table 1 instrumentation).
//!
//! Table 1 of the paper compares lock-free BSTs by the *number of objects
//! allocated* and the *number of atomic instructions executed* per
//! uncontended modify operation. With `feature = "instrument"` this
//! module counts exactly those events on the current thread; without the
//! feature every recording function is a no-op that compiles away, so the
//! default build pays nothing.
//!
//! The counters are thread-local `Cell`s, not atomics: instrumentation
//! must not add atomic traffic to the operations being measured.

use std::cell::Cell;

/// A snapshot of the current thread's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// CAS instructions executed (successful or not).
    pub cas: u64,
    /// BTS (`fetch_or`) instructions executed.
    pub bts: u64,
    /// Shared objects (tree nodes) allocated **from the allocator**.
    /// Pool-served nodes count under [`pool_hits`](Self::pool_hits)
    /// instead, so this field keeps measuring exactly Table 1's "objects
    /// allocated" cost.
    pub allocs: u64,
    /// Nodes served from recycled pool memory instead of the allocator.
    pub pool_hits: u64,
    /// Nodes retired (handed to the reclaimer).
    pub retires: u64,
    /// Invocations of the cleanup routine.
    pub cleanups: u64,
    /// Seek phases executed (full descents from the root).
    pub seeks: u64,
    /// Retries that restarted the descent from a revalidated local
    /// anchor instead of the root (not counted in `seeks`).
    pub local_restarts: u64,
    /// Nodes physically unlinked by this thread's successful splices.
    pub unlinked: u64,
    /// Successful splice CASes (each may unlink a whole chain).
    pub splices: u64,
}

impl OpStats {
    /// Total atomic read-modify-write instructions (CAS + BTS).
    pub fn atomics(&self) -> u64 {
        self.cas + self.bts
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            cas: self.cas.saturating_sub(earlier.cas),
            bts: self.bts.saturating_sub(earlier.bts),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            retires: self.retires.saturating_sub(earlier.retires),
            cleanups: self.cleanups.saturating_sub(earlier.cleanups),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            local_restarts: self.local_restarts.saturating_sub(earlier.local_restarts),
            unlinked: self.unlinked.saturating_sub(earlier.unlinked),
            splices: self.splices.saturating_sub(earlier.splices),
        }
    }
}

/// `after - before`, counter-wise and saturating — sugar for the
/// before/after measurement pattern: `let cost = stats::delta(|| op());`
/// or `snapshot() - baseline`.
impl std::ops::Sub for OpStats {
    type Output = OpStats;

    fn sub(self, earlier: OpStats) -> OpStats {
        self.since(&earlier)
    }
}

impl std::fmt::Display for OpStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cas={} bts={} allocs={} pool_hits={} retires={} cleanups={} seeks={} \
             local_restarts={} unlinked={} splices={}",
            self.cas,
            self.bts,
            self.allocs,
            self.pool_hits,
            self.retires,
            self.cleanups,
            self.seeks,
            self.local_restarts,
            self.unlinked,
            self.splices,
        )
    }
}

/// Runs `f` and returns the Table-1 counters it cost the current thread
/// (all zeros without `feature = "instrument"`). Replaces the
/// hand-rolled snapshot-before/snapshot-after/subtract pattern in tests
/// and the perf bin.
pub fn delta<T>(f: impl FnOnce() -> T) -> (T, OpStats) {
    let before = snapshot();
    let out = f();
    (out, snapshot() - before)
}

#[cfg(feature = "instrument")]
thread_local! {
    static STATS: Cell<OpStats> = const { Cell::new(OpStats {
        cas: 0, bts: 0, allocs: 0, pool_hits: 0, retires: 0,
        cleanups: 0, seeks: 0, local_restarts: 0, unlinked: 0, splices: 0,
    }) };
}

macro_rules! bump {
    ($field:ident $(, $n:expr)?) => {
        #[cfg(feature = "instrument")]
        STATS.with(|s| {
            let mut v = s.get();
            v.$field += 1 $( - 1 + $n)?;
            s.set(v);
        });
    };
}

/// Records one CAS instruction.
#[inline]
pub fn record_cas() {
    bump!(cas);
}

/// Records one BTS instruction.
#[inline]
pub fn record_bts() {
    bump!(bts);
}

/// Records one shared-object allocation (allocator-served).
#[inline]
pub fn record_alloc() {
    bump!(allocs);
}

/// Records one node served from recycled pool memory.
#[inline]
pub fn record_pool_hit() {
    bump!(pool_hits);
}

/// Records one node retirement.
#[inline]
pub fn record_retire() {
    bump!(retires);
}

/// Records one cleanup invocation.
#[inline]
pub fn record_cleanup() {
    bump!(cleanups);
}

/// Records one seek phase.
#[inline]
pub fn record_seek() {
    bump!(seeks);
}

/// Records one successful local-anchor restart.
#[inline]
pub fn record_local_restart() {
    bump!(local_restarts);
}

/// Records a successful splice that unlinked `n` nodes.
#[inline]
pub fn record_splice(n: u64) {
    let _ = n;
    bump!(splices);
    bump!(unlinked, n);
}

/// Returns the current thread's counters.
///
/// Always available; without `feature = "instrument"` the result is all
/// zeros.
#[inline]
pub fn snapshot() -> OpStats {
    #[cfg(feature = "instrument")]
    {
        STATS.with(|s| s.get())
    }
    #[cfg(not(feature = "instrument"))]
    {
        OpStats::default()
    }
}

/// Resets the current thread's counters to zero.
#[inline]
pub fn reset() {
    #[cfg(feature = "instrument")]
    STATS.with(|s| s.set(OpStats::default()));
}

// Silence the unused warning for the non-instrumented build.
#[allow(dead_code)]
fn _keep_cell_import(_: Cell<u8>) {}

#[cfg(all(test, feature = "instrument"))]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_cas();
        record_cas();
        record_bts();
        record_alloc();
        record_splice(3);
        let s = snapshot();
        assert_eq!(s.cas, 2);
        assert_eq!(s.bts, 1);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.atomics(), 3);
        assert_eq!(s.splices, 1);
        assert_eq!(s.unlinked, 3);
        reset();
        assert_eq!(snapshot(), OpStats::default());
    }

    #[test]
    fn since_subtracts() {
        reset();
        record_cas();
        let before = snapshot();
        record_cas();
        record_bts();
        let delta = snapshot().since(&before);
        assert_eq!(delta.cas, 1);
        assert_eq!(delta.bts, 1);
        // `Sub` is the same subtraction.
        assert_eq!(snapshot() - before, delta);
    }

    #[test]
    fn delta_measures_the_closure() {
        reset();
        record_cas(); // pre-existing count must not leak into the delta
        let (out, cost) = delta(|| {
            record_bts();
            record_splice(2);
            7
        });
        assert_eq!(out, 7);
        assert_eq!(cost.cas, 0);
        assert_eq!(cost.bts, 1);
        assert_eq!(cost.splices, 1);
        assert_eq!(cost.unlinked, 2);
    }

    #[test]
    fn display_names_every_counter() {
        let s = OpStats {
            cas: 3,
            unlinked: 5,
            ..OpStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("cas=3"));
        assert!(text.contains("unlinked=5"));
        assert!(text.contains("splices=0"));
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        record_cas();
        std::thread::spawn(|| {
            assert_eq!(snapshot().cas, 0);
            record_cas();
            assert_eq!(snapshot().cas, 1);
        })
        .join()
        .unwrap();
        assert_eq!(snapshot().cas, 1);
    }
}

#[cfg(all(test, not(feature = "instrument")))]
mod tests {
    use super::*;

    #[test]
    fn disabled_instrumentation_reports_zeros() {
        record_cas();
        record_bts();
        record_alloc();
        assert_eq!(snapshot(), OpStats::default());
    }
}
