//! Packed edge words: a 32-bit child *slot index* with the paper's
//! `flag` and `tag` bits stolen from its low-order bits.
//!
//! §3.2: "we steal two bits from each child address stored at a node".
//! Since PR 7 the stolen bits come out of an arena index instead of a
//! pointer: nodes live in the tree's [`NodePool`] slab (see
//! `nmbst-reclaim`), a child reference is the child's `u32` slot index
//! shifted left by two, and the low bits carry the marks:
//!
//! * bit 0 — **flag**: the head (leaf) node of this edge is being
//!   deleted; both tail and head will leave the tree.
//! * bit 1 — **tag**: only the tail node of this edge is being removed;
//!   the head is hoisted to the tail's ancestor.
//!
//! Index 0 is the null edge (the child fields of a leaf), so a whole
//! edge is 4 bytes — half the PR 6 footprint — and a node's two edges
//! share one 8-byte pair.
//!
//! A marked edge is immutable: no CAS with an unmarked expected value can
//! succeed on it, which is the entire coordination mechanism of the
//! algorithm — there are no operation descriptors.
//!
//! An [`Edge`] snapshot carries both the raw word (what CAS compares)
//! and the pointer the index resolved to at load time, so the tree logic
//! above keeps dereferencing plain pointers; resolution happens exactly
//! once per atomic load, against the arena the caller passes in.
//!
//! All bit algebra lives here; the tree logic deals only in the typed
//! [`Edge`] snapshot and the typed transitions on [`AtomicEdge`].

use crate::stats;
use nmbst_reclaim::NodePool;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};

const FLAG: u32 = 1 << 0;
const TAG: u32 = 1 << 1;
const MARKS: u32 = FLAG | TAG;
/// Index bits: everything above the two marks.
const ADDR: u32 = !MARKS;

/// How the cleanup routine sets the tag bit (§2: the BTS instruction;
/// §6: "our algorithm can be easily modified to use only compare-and-swap
/// instructions"). Both variants are provided so the substitution can be
/// benchmarked (ablation bench `ablation_bts`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TagMode {
    /// One `fetch_or` — compiles to a single locked RMW (`lock or`),
    /// the moral equivalent of the paper's bit-test-and-set.
    #[default]
    FetchOr,
    /// A CAS loop: read, set bit, compare-exchange, retry on failure.
    CasLoop,
}

/// Resolves the index half of an edge word against the arena. Index 0 is
/// the null edge.
#[inline]
fn resolve<N>(arena: &NodePool, word: u32) -> *mut N {
    let idx = word >> 2;
    if idx == 0 {
        std::ptr::null_mut()
    } else {
        // Typed resolution: the stride is `size_of::<N>()`, known at
        // compile time, so the offset math is constant arithmetic on
        // the descent's critical path.
        arena.slot_ptr_typed(idx)
    }
}

/// An immutable snapshot of an edge: the raw word `(flag, tag, index)`
/// plus the pointer the index resolved to when the snapshot was taken.
///
/// Equality and CAS compare the *word*; the cached pointer is derived
/// state (index resolution is a pure function of the arena).
pub struct Edge<N> {
    word: u32,
    ptr: *mut N,
}

impl<N> Clone for Edge<N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<N> Copy for Edge<N> {}

impl<N> Edge<N> {
    /// The null edge (child field of a leaf).
    #[inline]
    pub fn null() -> Self {
        Edge {
            word: 0,
            ptr: std::ptr::null_mut(),
        }
    }

    /// An unmarked edge to the node at slot `idx`, already resolved to
    /// `ptr`. Callers produce the pair from a node's `idx` field and its
    /// address (see `Node::edge`).
    #[inline]
    pub fn new(idx: u32, ptr: *mut N) -> Self {
        debug_assert!(idx != 0 || ptr.is_null());
        debug_assert!(idx < 1 << 30, "slot index overflows the edge word");
        Edge {
            word: idx << 2,
            ptr,
        }
    }

    /// This edge's target with the given marks (used when splicing
    /// copies the flag of the hoisted edge, Algorithm 4 line 108).
    #[inline]
    pub fn with_marks(self, flag: bool, tag: bool) -> Self {
        Edge {
            word: (self.word & ADDR) | (flag as u32 * FLAG) | (tag as u32 * TAG),
            ptr: self.ptr,
        }
    }

    #[inline]
    fn from_word(arena: &NodePool, word: u32) -> Self {
        Edge {
            word,
            ptr: resolve(arena, word),
        }
    }

    /// The arena slot this edge points to (marks removed). Zero only for
    /// the child edges of leaf nodes.
    #[inline]
    pub fn idx(self) -> u32 {
        self.word >> 2
    }

    /// The node this edge points to (marks removed), as resolved at
    /// snapshot time. Null only for the child edges of leaf nodes.
    #[inline]
    pub fn ptr(self) -> *mut N {
        self.ptr
    }

    /// The flag bit: the head leaf of this edge is being deleted.
    #[inline]
    pub fn flag(self) -> bool {
        self.word & FLAG != 0
    }

    /// The tag bit: the tail node of this edge is being removed.
    #[inline]
    pub fn tag(self) -> bool {
        self.word & TAG != 0
    }

    /// `true` if the edge carries either mark.
    #[inline]
    pub fn marked(self) -> bool {
        self.word & MARKS != 0
    }

    /// The same edge with the flag bit set.
    #[inline]
    pub fn flagged(self) -> Self {
        Edge {
            word: self.word | FLAG,
            ptr: self.ptr,
        }
    }
}

impl<N> PartialEq for Edge<N> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.word == other.word
    }
}
impl<N> Eq for Edge<N> {}

impl<N> std::fmt::Debug for Edge<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Edge(slot {}, flag={}, tag={})",
            self.idx(),
            self.flag(),
            self.tag()
        )
    }
}

/// A mutable edge: one 32-bit atomic word holding `(flag, tag, index)`.
///
/// This is a child field of a tree node (`left` or `right`). The typed
/// operations below are the *only* transitions the algorithm performs.
/// Operations that can surface a target take the arena, so every
/// returned [`Edge`] snapshot is pre-resolved.
pub struct AtomicEdge<N> {
    word: AtomicU32,
    _node: PhantomData<*mut N>,
}

// SAFETY: the edge itself is just an atomic word; what may be done with
// the pointer it resolves to is governed by the tree's (unsafe)
// internals, which impose their own `Send`/`Sync` bounds on node
// contents.
unsafe impl<N> Send for AtomicEdge<N> {}
unsafe impl<N> Sync for AtomicEdge<N> {}
// SAFETY: `Edge` is a plain-old-data snapshot of the word (plus a cached
// resolution of it).
unsafe impl<N> Send for Edge<N> {}
unsafe impl<N> Sync for Edge<N> {}

impl<N> AtomicEdge<N> {
    /// An edge initialized to `edge` (for nodes built before
    /// publication).
    #[inline]
    pub fn to(edge: Edge<N>) -> Self {
        AtomicEdge {
            word: AtomicU32::new(edge.word),
            _node: PhantomData,
        }
    }

    /// Atomically reads the edge, resolving its target against `arena`.
    #[inline]
    pub fn load(&self, arena: &NodePool) -> Edge<N> {
        Edge::from_word(arena, self.word.load(Ordering::Acquire))
    }

    /// `true` if the edge is currently null, read with `Relaxed`
    /// ordering.
    ///
    /// Only sound because null-ness is stable under every write the
    /// algorithm performs on a null edge (leaf child fields are written
    /// exactly never after publication) — callers must not infer
    /// anything about a *non*-null target from this.
    #[inline]
    pub fn is_null_relaxed(&self) -> bool {
        self.word.load(Ordering::Relaxed) & ADDR == 0
    }

    /// Reads the edge non-atomically; requires exclusive access.
    #[inline]
    pub fn load_mut(&mut self, arena: &NodePool) -> Edge<N> {
        Edge::from_word(arena, *self.word.get_mut())
    }

    /// Plain store for unpublished nodes (insert builds its subtree
    /// before the publishing CAS releases it).
    #[inline]
    pub fn store_unsynchronized(&self, edge: Edge<N>) {
        self.word.store(edge.word, Ordering::Relaxed);
    }

    /// The general CAS on an edge word. Counted as one atomic
    /// instruction under `feature = "instrument"`.
    ///
    /// Returns `Ok(())` on success and the observed edge (resolved
    /// against `arena`) on failure.
    #[inline]
    pub fn compare_exchange(
        &self,
        expected: Edge<N>,
        new: Edge<N>,
        arena: &NodePool,
    ) -> Result<(), Edge<N>> {
        stats::record_cas();
        self.word
            .compare_exchange(expected.word, new.word, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(|word| Edge::from_word(arena, word))
    }

    /// Sets the tag bit (the paper's BTS on the sibling edge, Algorithm 4
    /// line 106). Always succeeds; idempotent under helping. Counted as
    /// one atomic instruction.
    #[inline]
    pub fn set_tag(&self, mode: TagMode) {
        match mode {
            TagMode::FetchOr => {
                stats::record_bts();
                self.word.fetch_or(TAG, Ordering::AcqRel);
            }
            TagMode::CasLoop => loop {
                let current = self.word.load(Ordering::Acquire);
                if current & TAG != 0 {
                    break;
                }
                stats::record_cas();
                if self
                    .word
                    .compare_exchange_weak(
                        current,
                        current | TAG,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    break;
                }
            },
        }
    }
}

impl<N> std::fmt::Debug for AtomicEdge<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let word = self.word.load(Ordering::Relaxed);
        write!(
            f,
            "Edge(slot {}, flag={}, tag={})",
            word >> 2,
            word & FLAG != 0,
            word & TAG != 0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::Layout;

    fn arena() -> NodePool {
        NodePool::new(Layout::new::<u64>(), 16)
    }

    fn fake_node(arena: &NodePool) -> Edge<u64> {
        let (idx, ptr) = arena.bump();
        Edge::new(idx, ptr.as_ptr().cast())
    }

    #[test]
    fn clean_edge_roundtrip() {
        let a = arena();
        let e = fake_node(&a);
        assert!(!e.ptr().is_null());
        assert_eq!(a.slot_ptr(e.idx()).cast(), e.ptr());
        assert!(!e.flag());
        assert!(!e.tag());
        assert!(!e.marked());
    }

    #[test]
    fn marks_do_not_disturb_address() {
        let a = arena();
        let base = fake_node(&a);
        for (f, t) in [(false, false), (true, false), (false, true), (true, true)] {
            let e = base.with_marks(f, t);
            assert_eq!(e.ptr(), base.ptr());
            assert_eq!(e.idx(), base.idx());
            assert_eq!(e.flag(), f);
            assert_eq!(e.tag(), t);
            assert_eq!(e.marked(), f || t);
        }
    }

    #[test]
    fn flagged_sets_only_flag() {
        let a = arena();
        let e = fake_node(&a).flagged();
        assert!(e.flag());
        assert!(!e.tag());
    }

    #[test]
    fn cas_succeeds_on_expected_value() {
        let a = arena();
        let p = fake_node(&a);
        let q = fake_node(&a);
        let edge = AtomicEdge::to(p);
        assert!(edge.compare_exchange(p, q, &a).is_ok());
        assert_eq!(edge.load(&a).ptr(), q.ptr());
        assert_eq!(edge.load(&a).idx(), q.idx());
    }

    #[test]
    fn cas_fails_on_marked_edge() {
        let a = arena();
        let p = fake_node(&a);
        let q = fake_node(&a);
        let edge = AtomicEdge::to(p);
        edge.set_tag(TagMode::FetchOr);
        let err = edge.compare_exchange(p, q, &a).unwrap_err();
        assert!(err.tag());
        assert_eq!(err.ptr(), p.ptr());
        // A marked edge is frozen: its target can never change again.
        assert_eq!(edge.load(&a).ptr(), p.ptr());
    }

    #[test]
    fn flag_cas_is_the_injection_step() {
        let a = arena();
        let p = fake_node(&a);
        let edge = AtomicEdge::to(p);
        assert!(edge.compare_exchange(p, p.flagged(), &a).is_ok());
        assert!(edge.load(&a).flag());
        // Second injection on the same edge fails (duplicate delete).
        assert!(edge.compare_exchange(p, p.flagged(), &a).is_err());
    }

    #[test]
    fn tag_modes_agree() {
        let a = arena();
        for mode in [TagMode::FetchOr, TagMode::CasLoop] {
            let p = fake_node(&a);
            let edge = AtomicEdge::to(p);
            edge.set_tag(mode);
            let e = edge.load(&a);
            assert!(e.tag());
            assert!(!e.flag());
            assert_eq!(e.ptr(), p.ptr());
            // Idempotent.
            edge.set_tag(mode);
            assert_eq!(edge.load(&a), e);
        }
    }

    #[test]
    fn tag_preserves_flag() {
        let a = arena();
        let p = fake_node(&a);
        let edge = AtomicEdge::to(p);
        edge.compare_exchange(p, p.flagged(), &a).unwrap();
        edge.set_tag(TagMode::FetchOr);
        let e = edge.load(&a);
        assert!(e.flag() && e.tag());
    }

    #[test]
    fn null_edge() {
        let a = arena();
        let edge: AtomicEdge<u64> = AtomicEdge::to(Edge::null());
        assert!(edge.load(&a).ptr().is_null());
        assert_eq!(edge.load(&a).idx(), 0);
        assert!(!edge.load(&a).marked());
        assert!(edge.is_null_relaxed());
    }

    #[test]
    fn concurrent_taggers_idempotent() {
        let a = arena();
        let p = fake_node(&a);
        let edge = AtomicEdge::to(p);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        edge.set_tag(TagMode::FetchOr);
                        edge.set_tag(TagMode::CasLoop);
                    }
                });
            }
        });
        let e = edge.load(&a);
        assert!(e.tag());
        assert!(!e.flag());
        assert_eq!(e.ptr(), p.ptr());
    }
}
