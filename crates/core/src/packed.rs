//! Packed edge words: a child pointer with the paper's `flag` and `tag`
//! bits stolen from its low-order bits.
//!
//! §3.2: "we steal two bits from each child address stored at a node".
//! Tree nodes are aligned to at least 8 bytes, so bits 0 and 1 of any
//! node address are guaranteed zero and can carry the edge marks:
//!
//! * bit 0 — **flag**: the head (leaf) node of this edge is being
//!   deleted; both tail and head will leave the tree.
//! * bit 1 — **tag**: only the tail node of this edge is being removed;
//!   the head is hoisted to the tail's ancestor.
//!
//! A marked edge is immutable: no CAS with an unmarked expected value can
//! succeed on it, which is the entire coordination mechanism of the
//! algorithm — there are no operation descriptors.
//!
//! All bit algebra lives here; the tree logic above deals only in the
//! typed [`Edge`] snapshot and the typed transitions on [`AtomicEdge`].

use crate::stats;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

const FLAG: usize = 1 << 0;
const TAG: usize = 1 << 1;
const MARKS: usize = FLAG | TAG;
const ADDR: usize = !MARKS;

/// How the cleanup routine sets the tag bit (§2: the BTS instruction;
/// §6: "our algorithm can be easily modified to use only compare-and-swap
/// instructions"). Both variants are provided so the substitution can be
/// benchmarked (ablation bench `ablation_bts`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TagMode {
    /// One `fetch_or` — compiles to a single locked RMW (`lock or`),
    /// the moral equivalent of the paper's bit-test-and-set.
    #[default]
    FetchOr,
    /// A CAS loop: read, set bit, compare-exchange, retry on failure.
    CasLoop,
}

/// An immutable snapshot of an edge word: `(flag, tag, address)`.
pub struct Edge<N> {
    word: usize,
    _node: PhantomData<*mut N>,
}

impl<N> Clone for Edge<N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<N> Copy for Edge<N> {}

impl<N> Edge<N> {
    /// An unmarked edge to `ptr`.
    #[inline]
    pub fn clean(ptr: *mut N) -> Self {
        debug_assert_eq!(ptr as usize & MARKS, 0, "node under-aligned");
        Edge {
            word: ptr as usize,
            _node: PhantomData,
        }
    }

    /// An edge to `ptr` with explicit marks (used when splicing copies
    /// the flag of the hoisted edge, Algorithm 4 line 108).
    #[inline]
    pub fn with_marks(flag: bool, tag: bool, ptr: *mut N) -> Self {
        debug_assert_eq!(ptr as usize & MARKS, 0, "node under-aligned");
        Edge {
            word: ptr as usize | (flag as usize * FLAG) | (tag as usize * TAG),
            _node: PhantomData,
        }
    }

    #[inline]
    fn from_word(word: usize) -> Self {
        Edge {
            word,
            _node: PhantomData,
        }
    }

    /// The node this edge points to (marks removed). Null only for the
    /// child edges of leaf nodes.
    #[inline]
    pub fn ptr(self) -> *mut N {
        (self.word & ADDR) as *mut N
    }

    /// The flag bit: the head leaf of this edge is being deleted.
    #[inline]
    pub fn flag(self) -> bool {
        self.word & FLAG != 0
    }

    /// The tag bit: the tail node of this edge is being removed.
    #[inline]
    pub fn tag(self) -> bool {
        self.word & TAG != 0
    }

    /// `true` if the edge carries either mark.
    #[inline]
    pub fn marked(self) -> bool {
        self.word & MARKS != 0
    }

    /// The same edge with the flag bit set.
    #[inline]
    pub fn flagged(self) -> Self {
        Edge::from_word(self.word | FLAG)
    }
}

impl<N> PartialEq for Edge<N> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.word == other.word
    }
}
impl<N> Eq for Edge<N> {}

impl<N> std::fmt::Debug for Edge<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Edge({:#x}, flag={}, tag={})",
            self.ptr() as usize,
            self.flag(),
            self.tag()
        )
    }
}

/// A mutable edge: one atomic word holding `(flag, tag, address)`.
///
/// This is a child field of a tree node (`left` or `right`). The typed
/// operations below are the *only* transitions the algorithm performs.
pub struct AtomicEdge<N> {
    word: AtomicUsize,
    _node: PhantomData<*mut N>,
}

// SAFETY: the edge itself is just an atomic word; what may be done with
// the pointer it encodes is governed by the tree's (unsafe) internals,
// which impose their own `Send`/`Sync` bounds on node contents.
unsafe impl<N> Send for AtomicEdge<N> {}
unsafe impl<N> Sync for AtomicEdge<N> {}
// SAFETY: `Edge` is a plain-old-data snapshot of the word.
unsafe impl<N> Send for Edge<N> {}
unsafe impl<N> Sync for Edge<N> {}

impl<N> AtomicEdge<N> {
    /// A null edge (child field of a leaf).
    #[inline]
    pub fn null() -> Self {
        AtomicEdge {
            word: AtomicUsize::new(0),
            _node: PhantomData,
        }
    }

    /// An unmarked edge to `ptr`.
    #[inline]
    pub fn to(ptr: *mut N) -> Self {
        debug_assert_eq!(ptr as usize & MARKS, 0, "node under-aligned");
        AtomicEdge {
            word: AtomicUsize::new(ptr as usize),
            _node: PhantomData,
        }
    }

    /// Atomically reads the edge.
    #[inline]
    pub fn load(&self) -> Edge<N> {
        Edge::from_word(self.word.load(Ordering::Acquire))
    }

    /// Reads the edge with `Relaxed` ordering.
    ///
    /// Only sound where the caller consumes a property of the word that
    /// every write to this edge preserves (today: the null-ness test in
    /// `Node::is_leaf`) — the returned pointer must not be dereferenced
    /// on the strength of this load alone.
    #[inline]
    pub fn load_relaxed(&self) -> Edge<N> {
        Edge::from_word(self.word.load(Ordering::Relaxed))
    }

    /// Reads the edge non-atomically; requires exclusive access.
    #[inline]
    pub fn load_mut(&mut self) -> Edge<N> {
        Edge::from_word(*self.word.get_mut())
    }

    /// Plain store for unpublished nodes (insert builds its subtree
    /// before the publishing CAS releases it).
    #[inline]
    pub fn store_unsynchronized(&self, edge: Edge<N>) {
        self.word.store(edge.word, Ordering::Relaxed);
    }

    /// The general CAS on an edge word. Counted as one atomic
    /// instruction under `feature = "instrument"`.
    ///
    /// Returns `Ok(())` on success and the observed edge on failure.
    #[inline]
    pub fn compare_exchange(&self, expected: Edge<N>, new: Edge<N>) -> Result<(), Edge<N>> {
        stats::record_cas();
        self.word
            .compare_exchange(expected.word, new.word, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(Edge::from_word)
    }

    /// Sets the tag bit (the paper's BTS on the sibling edge, Algorithm 4
    /// line 106). Always succeeds; idempotent under helping. Counted as
    /// one atomic instruction.
    #[inline]
    pub fn set_tag(&self, mode: TagMode) {
        match mode {
            TagMode::FetchOr => {
                stats::record_bts();
                self.word.fetch_or(TAG, Ordering::AcqRel);
            }
            TagMode::CasLoop => loop {
                let current = self.word.load(Ordering::Acquire);
                if current & TAG != 0 {
                    break;
                }
                stats::record_cas();
                if self
                    .word
                    .compare_exchange_weak(
                        current,
                        current | TAG,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    break;
                }
            },
        }
    }
}

impl<N> std::fmt::Debug for AtomicEdge<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.load().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_node(align8: usize) -> *mut u64 {
        (align8 * 8) as *mut u64
    }

    #[test]
    fn clean_edge_roundtrip() {
        let p = fake_node(123);
        let e = Edge::clean(p);
        assert_eq!(e.ptr(), p);
        assert!(!e.flag());
        assert!(!e.tag());
        assert!(!e.marked());
    }

    #[test]
    fn marks_do_not_disturb_address() {
        let p = fake_node(77);
        for (f, t) in [(false, false), (true, false), (false, true), (true, true)] {
            let e = Edge::with_marks(f, t, p);
            assert_eq!(e.ptr(), p);
            assert_eq!(e.flag(), f);
            assert_eq!(e.tag(), t);
            assert_eq!(e.marked(), f || t);
        }
    }

    #[test]
    fn flagged_sets_only_flag() {
        let p = fake_node(9);
        let e = Edge::clean(p).flagged();
        assert!(e.flag());
        assert!(!e.tag());
        assert_eq!(e.ptr(), p);
    }

    #[test]
    fn cas_succeeds_on_expected_value() {
        let p = fake_node(1);
        let q = fake_node(2);
        let a = AtomicEdge::to(p);
        assert!(a.compare_exchange(Edge::clean(p), Edge::clean(q)).is_ok());
        assert_eq!(a.load().ptr(), q);
    }

    #[test]
    fn cas_fails_on_marked_edge() {
        let p = fake_node(1);
        let q = fake_node(2);
        let a = AtomicEdge::to(p);
        a.set_tag(TagMode::FetchOr);
        let err = a
            .compare_exchange(Edge::clean(p), Edge::clean(q))
            .unwrap_err();
        assert!(err.tag());
        assert_eq!(err.ptr(), p);
        // A marked edge is frozen: its address can never change again.
        assert_eq!(a.load().ptr(), p);
    }

    #[test]
    fn flag_cas_is_the_injection_step() {
        let p = fake_node(4);
        let a = AtomicEdge::to(p);
        let clean = Edge::clean(p);
        assert!(a.compare_exchange(clean, clean.flagged()).is_ok());
        assert!(a.load().flag());
        // Second injection on the same edge fails (duplicate delete).
        assert!(a.compare_exchange(clean, clean.flagged()).is_err());
    }

    #[test]
    fn tag_modes_agree() {
        for mode in [TagMode::FetchOr, TagMode::CasLoop] {
            let p = fake_node(6);
            let a = AtomicEdge::to(p);
            a.set_tag(mode);
            let e = a.load();
            assert!(e.tag());
            assert!(!e.flag());
            assert_eq!(e.ptr(), p);
            // Idempotent.
            a.set_tag(mode);
            assert_eq!(a.load(), e);
        }
    }

    #[test]
    fn tag_preserves_flag() {
        let p = fake_node(3);
        let a = AtomicEdge::to(p);
        let clean = Edge::clean(p);
        a.compare_exchange(clean, clean.flagged()).unwrap();
        a.set_tag(TagMode::FetchOr);
        let e = a.load();
        assert!(e.flag() && e.tag());
    }

    #[test]
    fn null_edge() {
        let a: AtomicEdge<u64> = AtomicEdge::null();
        assert!(a.load().ptr().is_null());
        assert!(!a.load().marked());
    }

    #[test]
    fn concurrent_taggers_idempotent() {
        let p = fake_node(11);
        let a = AtomicEdge::to(p);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        a.set_tag(TagMode::FetchOr);
                        a.set_tag(TagMode::CasLoop);
                    }
                });
            }
        });
        let e = a.load();
        assert!(e.tag());
        assert!(!e.flag());
        assert_eq!(e.ptr(), p);
    }
}
