//! The set front end: the paper's dictionary ADT of §2 verbatim.

use crate::tree::NmTreeMap;
use nmbst_reclaim::{Ebr, Reclaim};

/// A concurrent lock-free ordered set — the exact abstract data type the
/// paper implements (§2): `search`, `insert`, `delete` over unique keys.
///
/// A thin wrapper over [`NmTreeMap<K, ()>`](NmTreeMap), so sets pay no
/// space for values.
///
/// # Examples
///
/// ```
/// use nmbst::NmTreeSet;
///
/// let set: NmTreeSet<u64> = NmTreeSet::new();
/// assert!(set.insert(7));
/// assert!(!set.insert(7)); // duplicate: set unchanged
/// assert!(set.contains(&7));
/// assert!(set.remove(&7));
/// assert!(!set.remove(&7));
/// ```
pub struct NmTreeSet<K, R: Reclaim = Ebr> {
    map: NmTreeMap<K, (), R>,
}

impl<K, R> NmTreeSet<K, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    /// Creates an empty set.
    pub fn new() -> Self {
        NmTreeSet {
            map: NmTreeMap::new(),
        }
    }

    /// Creates an empty set with an explicit
    /// [`TagMode`](crate::TagMode) (see the `ablation_bts` bench).
    pub fn with_tag_mode(mode: crate::TagMode) -> Self {
        NmTreeSet {
            map: NmTreeMap::with_tag_mode(mode),
        }
    }

    /// Creates an empty set with an explicit
    /// [`RestartPolicy`](crate::RestartPolicy) for the modify-path retry
    /// loops.
    pub fn with_restart_policy(restart: crate::RestartPolicy) -> Self {
        NmTreeSet {
            map: NmTreeMap::with_restart_policy(restart),
        }
    }

    /// Creates an empty set with every tuning knob explicit (see
    /// [`TreeConfig`](crate::TreeConfig)).
    pub fn with_config(config: crate::TreeConfig) -> Self {
        NmTreeSet {
            map: NmTreeMap::with_config(config),
        }
    }

    /// Builds a set from an iterator of ascending keys in O(n),
    /// producing a perfectly balanced tree (see
    /// [`NmTreeMap::from_sorted_iter`]). Unsorted input is sorted first;
    /// duplicates collapse to one key.
    ///
    /// ```
    /// use nmbst::NmTreeSet;
    ///
    /// let set: NmTreeSet<u32> = NmTreeSet::from_sorted_iter(0..100);
    /// assert!(set.contains(&42));
    /// ```
    pub fn from_sorted_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        NmTreeSet {
            map: NmTreeMap::from_sorted_iter(iter.into_iter().map(|k| (k, ()))),
        }
    }

    /// Returns a pin-amortizing [`SetHandle`](crate::SetHandle) bound to
    /// this set (see [`NmTreeMap::handle`]).
    pub fn handle(&self) -> crate::SetHandle<'_, K, R> {
        crate::SetHandle::new(&self.map)
    }

    /// The paper's *insert*: adds `key`; returns `true` iff the set
    /// changed (the key was absent). Lock-free; one CAS to publish.
    #[inline]
    pub fn insert(&self, key: K) -> bool {
        self.map.insert(key, ())
    }

    /// The paper's *delete*: removes `key`; returns `true` iff the set
    /// changed (the key was present). Lock-free; one CAS to linearize.
    #[inline]
    pub fn remove(&self, key: &K) -> bool {
        self.map.remove(key)
    }

    /// The paper's *search*: `true` iff `key` is present. One
    /// root-to-leaf descent, no retries.
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains(key)
    }

    /// Visits every key in ascending order, weakly consistent (see
    /// [`NmTreeMap::for_each`]).
    pub fn for_each(&self, mut f: impl FnMut(&K)) {
        self.map.for_each(|k, _| f(k));
    }

    /// Visits every key inside `range` in ascending order, pruning
    /// subtrees that cannot intersect it (see
    /// [`NmTreeMap::range_for_each`]).
    pub fn range_for_each<Q: std::ops::RangeBounds<K>>(&self, range: Q, mut f: impl FnMut(&K)) {
        self.map.range_for_each(range, |k, _| f(k));
    }

    /// The smallest key, or `None` if empty (weakly consistent).
    pub fn first(&self) -> Option<K> {
        self.map.first().map(|(k, _)| k)
    }

    /// The largest key, or `None` if empty (weakly consistent).
    pub fn last(&self) -> Option<K> {
        self.map.last().map(|(k, _)| k)
    }

    /// Number of keys via a weakly consistent traversal.
    pub fn count(&self) -> usize {
        self.map.count()
    }

    /// `true` if a weakly consistent traversal saw no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Exact number of keys (exclusive access).
    pub fn len(&mut self) -> usize {
        self.map.len()
    }

    /// All keys in ascending order (exact snapshot; exclusive access).
    pub fn keys(&mut self) -> Vec<K> {
        self.map.keys()
    }

    /// Removes every key (exclusive access).
    pub fn clear(&mut self) {
        self.map.clear()
    }

    /// Validates structural invariants (exclusive access); see
    /// [`NmTreeMap::check_invariants`].
    pub fn check_invariants(&mut self) -> Result<crate::TreeShape, String> {
        self.map.check_invariants()
    }

    /// Hands this thread's retired nodes to the collector (see
    /// [`NmTreeMap::flush`]).
    pub fn flush(&self) {
        self.map.flush()
    }

    /// A point-in-time [`MetricsSnapshot`](crate::obs::MetricsSnapshot)
    /// of this set (see [`NmTreeMap::metrics`]).
    pub fn metrics(&self) -> crate::obs::MetricsSnapshot {
        self.map.metrics()
    }

    /// Access to the underlying map (advanced uses: pinning, tag-mode
    /// experiments).
    pub fn as_map(&self) -> &NmTreeMap<K, (), R> {
        &self.map
    }

    /// Exclusive access to the underlying map — the bulk-load path of
    /// `Extend` needs `&mut` to take the single-publish shortcut.
    pub(crate) fn map_mut(&mut self) -> &mut NmTreeMap<K, (), R> {
        &mut self.map
    }
}

impl<K, R> Default for NmTreeSet<K, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, R> std::fmt::Debug for NmTreeSet<K, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NmTreeSet").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics() {
        let set: NmTreeSet<i32> = NmTreeSet::new();
        assert!(set.insert(1));
        assert!(set.insert(2));
        assert!(!set.insert(1));
        assert!(set.contains(&1));
        assert!(!set.contains(&3));
        assert!(set.remove(&1));
        assert!(!set.remove(&1));
        assert!(!set.contains(&1));
    }

    #[test]
    fn for_each_ordered() {
        let set: NmTreeSet<i32> = NmTreeSet::new();
        for k in [5, 3, 8, 1, 9] {
            set.insert(k);
        }
        let mut seen = Vec::new();
        set.for_each(|k| seen.push(*k));
        assert_eq!(seen, vec![1, 3, 5, 8, 9]);
    }

    #[test]
    fn len_keys_clear() {
        let mut set: NmTreeSet<i32> = NmTreeSet::new();
        for k in 0..10 {
            set.insert(k);
        }
        assert_eq!(set.len(), 10);
        assert_eq!(set.keys(), (0..10).collect::<Vec<_>>());
        set.clear();
        assert_eq!(set.len(), 0);
        assert!(set.check_invariants().is_ok());
    }

    #[test]
    fn works_with_string_keys() {
        let set: NmTreeSet<String> = NmTreeSet::new();
        assert!(set.insert("banana".into()));
        assert!(set.insert("apple".into()));
        assert!(set.contains(&"apple".to_string()));
        assert!(set.remove(&"banana".to_string()));
        assert!(!set.contains(&"banana".to_string()));
    }
}
