//! Pool-aware node allocation over the arena slab (PR 4's recycling
//! layer, re-based onto PR 7's slot storage).
//!
//! Since PR 7 the shared [`NodePool`] is not an *optional* free list in
//! front of `malloc` — it **is** the node store. Every tree owns one
//! arena sized for its `Node<K, V>` layout; every node the tree ever
//! creates is a `u32` slot in it:
//!
//! * **retire → recycle**: the cleanup routine retires detached nodes
//!   with a *recycle deferral* ([`recycle_deferred`]) instead of a plain
//!   drop; when the reclaimer proves the grace period elapsed, the
//!   deferral drops the entries the node's drop hint says it still owns
//!   and pushes the slot onto the free list (overflow abandons the slot
//!   in place — arena memory, reclaimed when the tree drops).
//! * **alloc → reuse**: allocation goes through a [`NodeCache`] — a
//!   per-handle (or per-call) unsynchronized cache over the shared pool —
//!   so hot loops pop recycled slots without touching shared state, and
//!   fall through to the arena's bump cursor (never `malloc`) on a miss.
//!
//! Reuse is ABA-safe *by construction*: the deferral only runs once no
//! live reference to the slot can exist, which is exactly the guarantee
//! reclamation already provides for freeing (DESIGN.md §11, §14). Under
//! [`Leaky`](nmbst_reclaim::Leaky) (`Reclaim::RECLAIMS == false`)
//! deferrals never run, so retired slots keep leaking inside the arena —
//! the free list then only ever reuses insert scratch that was discarded
//! unpublished.

use crate::chaos::{self, Action, Point};
use crate::node::Node;
use crate::stats;
use nmbst_reclaim::{Deferred, NodePool};
use std::alloc::Layout;
use std::sync::Arc;

/// Default bound on a tree's shared free list, in nodes. Two nodes per
/// insert means this absorbs ~128 churned keys of garbage — enough to
/// make steady-state churn bump-free, small enough that an idle tree is
/// not hoarding recyclable slots.
pub const DEFAULT_POOL_CAPACITY: usize = 256;

/// How many slots a handle's [`NodeCache`] keeps privately. Refills and
/// give-backs move slots between this cache and the shared pool in
/// batches, so the shared lock is touched once per ~batch, not per node.
pub(crate) const HANDLE_CACHE_CAP: usize = 32;

/// Slots moved from the shared pool into a cache per refill.
const REFILL_BATCH: usize = 8;

/// The `pool` knob on [`TreeConfig`](crate::TreeConfig): whether retired
/// nodes are recycled into new inserts, and how many free slots the
/// tree may hold. One flag for A/B ablation — see the perf bin's
/// pool-on/pool-off cells. The arena itself always exists (it is the
/// node store); this knob only governs the *recycling* free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Recycle retired nodes through a shared free list (default `true`).
    pub enabled: bool,
    /// Maximum free slots the shared list holds; overflow is abandoned
    /// in place until the tree drops (default [`DEFAULT_POOL_CAPACITY`]).
    pub capacity: usize,
}

impl PoolConfig {
    /// Recycling off: every allocation bump-allocates fresh arena space
    /// and every reclaimed slot is abandoned until the tree drops — the
    /// pre-PR 4 behaviour, arena-backed.
    pub fn disabled() -> Self {
        PoolConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Recycling on with an explicit free-list bound.
    pub fn with_capacity(capacity: usize) -> Self {
        PoolConfig {
            enabled: true,
            capacity,
        }
    }

    /// The free-list bound this config asks of the arena.
    pub(crate) fn effective_capacity(&self) -> usize {
        if self.enabled {
            self.capacity
        } else {
            0
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            enabled: true,
            capacity: DEFAULT_POOL_CAPACITY,
        }
    }
}

/// An unsynchronized allocation cache over a tree's shared [`NodePool`].
///
/// Handles keep one alive across operations (capacity
/// [`HANDLE_CACHE_CAP`]); the plain API builds a transient zero-capacity
/// one per modify call, which then reads/writes the shared pool directly.
/// Either way this is the single choke point where node slots enter
/// and leave an operation, so hit/miss accounting batches here in plain
/// fields and flushes to the pool's atomics on drop/repin.
pub(crate) struct NodeCache<'t> {
    shared: &'t NodePool,
    local: Vec<u32>,
    local_cap: usize,
    hits: u64,
    misses: u64,
}

impl<'t> NodeCache<'t> {
    /// A transient cache that keeps nothing locally (plain-API calls).
    pub(crate) fn direct(shared: &'t NodePool) -> Self {
        Self::with_local(shared, 0)
    }

    /// A cache holding up to `local_cap` slots privately (handles).
    pub(crate) fn with_local(shared: &'t NodePool, local_cap: usize) -> Self {
        NodeCache {
            shared,
            local: Vec::new(),
            local_cap,
            hits: 0,
            misses: 0,
        }
    }

    /// The arena this cache serves slots of.
    #[inline]
    pub(crate) fn arena(&self) -> &'t NodePool {
        self.shared
    }

    /// Carves out one uninitialized slot for a `T`, preferring recycled
    /// slots and bump-allocating on a miss. Returns the slot's index and
    /// its (stable) address; the caller must initialize it before the
    /// node can be published or freed.
    pub(crate) fn alloc_raw<T>(&mut self) -> (u32, *mut T) {
        debug_assert_eq!(
            Layout::new::<T>(),
            self.shared.layout(),
            "cache serves exactly the tree's node layout"
        );
        if let Some(idx) = self
            .local
            .pop()
            .or_else(|| refill(&mut self.local, self.shared))
        {
            self.hits += 1;
            stats::record_pool_hit();
            return (idx, self.shared.slot_ptr(idx).cast());
        }
        self.misses += 1;
        stats::record_alloc();
        let (idx, ptr) = self.shared.bump();
        (idx, ptr.as_ptr().cast())
    }

    /// Returns a node's slot to the cache/pool. The node must already be
    /// a *shell*: whatever entries and routing key it owned were dropped
    /// by the caller (`drop_retired_contents` or entry extraction).
    ///
    /// # Safety
    ///
    /// `node` must be an exclusively owned, never-published (or fully
    /// unlinked and grace-period-expired) slot of this cache's arena,
    /// with all owned contents already dropped or moved out.
    pub(crate) unsafe fn free_shell<K, V>(&mut self, node: *mut Node<K, V>) {
        // SAFETY: the slot is exclusively owned per contract; `idx` is
        // plain data, valid even after the contents were dropped.
        let idx = unsafe { (*node).idx };
        if self.local.len() < self.local_cap {
            self.local.push(idx);
        } else {
            // SAFETY: slot provenance and dead contents per contract.
            unsafe { self.shared.release(idx) };
        }
    }

    /// Publishes batched hit/miss counts into the shared pool's stats.
    pub(crate) fn flush_counters(&mut self) {
        if self.hits != 0 || self.misses != 0 {
            self.shared.note_usage(self.hits, self.misses);
            self.hits = 0;
            self.misses = 0;
        }
    }
}

fn refill(local: &mut Vec<u32>, pool: &NodePool) -> Option<u32> {
    let mut first = None;
    pool.acquire_batch(REFILL_BATCH, |idx| {
        if first.is_none() {
            first = Some(idx);
        } else {
            local.push(idx);
        }
    });
    first
}

impl Drop for NodeCache<'_> {
    fn drop(&mut self) {
        self.flush_counters();
        // SAFETY: every cached slot satisfies the release contract (came
        // from this pool, contents dropped before caching).
        unsafe { self.shared.release_batch(&mut self.local) };
    }
}

/// Builds the deferral that recycles `node` once its grace period has
/// elapsed: drop the entries its drop hint says it still owns plus the
/// routing key, then hand the slot back to `pool` (the
/// [`Point::Recycle`] chaos hook can force the abandon-in-place overflow
/// path instead).
///
/// The deferral carries only a *raw* pointer to `pool` — no per-node
/// refcount traffic. The tree makes that sound by parking an `Arc` clone
/// of the pool inside the reclaimer
/// ([`Reclaim::hold`](nmbst_reclaim::Reclaim::hold)) at construction:
/// the reclaimer guarantees the token outlives every deferral it runs,
/// including on straggling collector threads.
///
/// # Safety
///
/// `node` must be unlinked and retired exactly once (the
/// [`RetireGuard::retire_deferred`](nmbst_reclaim::RetireGuard) contract
/// transfers to the caller), must be a slot of this pool, and its drop
/// hint must already describe which entries it still owns. The scheme
/// running the deferral must prove the grace period before calling it,
/// and the caller must have parked a pool keepalive in that scheme (see
/// above) so `pool` is alive whenever the deferral can run.
pub(crate) unsafe fn recycle_deferred<K: Send, V: Send>(
    node: *mut Node<K, V>,
    pool: &Arc<NodePool>,
) -> Deferred {
    unsafe fn recycle<K, V>(data: *mut (), ctx: *mut ()) {
        let node = data.cast::<Node<K, V>>();
        // SAFETY: the reclaimer holds a pool keepalive that outlives this
        // call (function contract).
        let pool = unsafe { &*(ctx as *const NodePool) };
        // SAFETY: the grace period elapsed — this deferral is the unique
        // owner. Read the slot index out before the contents die.
        let idx = unsafe { (*node).idx };
        // SAFETY: unique ownership; the drop hint was set before retire.
        unsafe { crate::node::drop_retired_contents(node) };
        if chaos::hit(Point::Recycle) == Action::Abandon {
            // Chaos: pretend the free list declined; abandon the slot in
            // place (arena memory, reclaimed when the pool drops).
        } else {
            // SAFETY: slot provenance per contract, contents just dropped.
            unsafe { pool.release(idx) };
        }
    }
    let ctx = Arc::as_ptr(pool) as *mut ();
    // SAFETY: `recycle::<K, V>` releases exactly once; `K: Send, V: Send`
    // makes running it on a collector thread sound; leaking it uncalled
    // (Leaky) leaks only the slot's contents, as intended.
    unsafe { Deferred::from_raw(node.cast(), ctx, recycle::<K, V>) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{drop_retired_contents, HINT_ALL, HINT_NONE};

    fn pool_for<K, V>(cap: usize) -> NodePool {
        NodePool::new(Layout::new::<Node<K, V>>(), cap)
    }

    #[test]
    fn alloc_free_round_trip_reuses_slot() {
        let pool = pool_for::<u64, u64>(8);
        let mut cache = NodeCache::direct(&pool);
        let a = Node::<u64, u64>::new_user_leaf_in(&mut cache, 1, 10);
        unsafe {
            drop_retired_contents(a);
            cache.free_shell(a);
        }
        let b = Node::<u64, u64>::new_user_leaf_in(&mut cache, 2, 20);
        assert_eq!(a, b, "freed slot is reused LIFO");
        unsafe {
            drop_retired_contents(b);
            cache.free_shell(b);
        }
        drop(cache);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn capacity_zero_cache_always_bumps() {
        let pool = pool_for::<u64, ()>(0);
        let mut cache = NodeCache::direct(&pool);
        let a = Node::<u64, ()>::new_user_leaf_in(&mut cache, 1, ());
        unsafe {
            drop_retired_contents(a);
            cache.free_shell(a);
        }
        let b = Node::<u64, ()>::new_user_leaf_in(&mut cache, 2, ());
        assert_ne!(a, b, "no recycling at capacity 0");
        unsafe {
            drop_retired_contents(b);
            cache.free_shell(b);
        }
        drop(cache);
        let s = pool.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn local_cache_batches_shared_traffic() {
        let pool = pool_for::<u64, ()>(64);
        // Seed the shared pool with a few slots.
        {
            let mut seed = NodeCache::direct(&pool);
            let nodes: Vec<_> = (0..6)
                .map(|i| Node::<u64, ()>::new_user_leaf_in(&mut seed, i, ()))
                .collect();
            for n in nodes {
                unsafe {
                    drop_retired_contents(n);
                    seed.free_shell(n);
                }
            }
        }
        assert_eq!(pool.len(), 6);
        let mut cache = NodeCache::with_local(&pool, 16);
        // One alloc refills a batch: the shared pool drains more than one.
        let n = Node::<u64, ()>::new_user_leaf_in(&mut cache, 9, ());
        assert!(pool.len() < 6);
        unsafe {
            drop_retired_contents(n);
            cache.free_shell(n);
        }
        drop(cache); // gives all cached slots back
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn recycle_deferred_honours_drop_hints() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let pool = Arc::new(pool_for::<u64, D>(8));
        let mut cache = NodeCache::direct(&pool);
        let moved = Node::<u64, D>::new_user_leaf_in(&mut cache, 1, D(Arc::clone(&drops)));
        let owned = Node::<u64, D>::new_user_leaf_in(&mut cache, 2, D(Arc::clone(&drops)));
        drop(cache);
        unsafe {
            // A COW-replaced block: its entry moved on, nothing drops.
            (*moved).set_drop_hint(HINT_NONE);
            recycle_deferred(moved, &pool).call();
            assert_eq!(drops.load(Ordering::Relaxed), 0);
            // But the orphaned entry must be dropped by *someone*; here
            // the test plays the replacement block's role.
            (*owned).set_drop_hint(HINT_ALL);
            recycle_deferred(owned, &pool).call();
            assert_eq!(drops.load(Ordering::Relaxed), 1);
        }
        assert_eq!(pool.len(), 2, "both slots recycled, not abandoned");
    }

    #[test]
    fn recycle_deferred_returns_slot_to_pool() {
        let pool = Arc::new(pool_for::<u64, u64>(8));
        let mut cache = NodeCache::direct(&pool);
        let node = Node::<u64, u64>::new_user_leaf_in(&mut cache, 7, 70);
        drop(cache);
        let d = unsafe { recycle_deferred(node, &pool) };
        assert_eq!(d.address(), node as usize);
        assert_eq!(pool.len(), 0);
        d.call();
        assert_eq!(pool.len(), 1, "slot recycled, not abandoned");
        assert_eq!(
            Arc::strong_count(&pool),
            1,
            "deferrals borrow the pool raw — no refcount traffic"
        );
    }
}
