//! Pool-aware node allocation (the PR 4 recycling layer).
//!
//! Every insert builds two nodes. Without a pool they come from the
//! global allocator and, once deleted, go back to it after the grace
//! period — a `malloc`/`free` pair per churned key. With the pool
//! ([`PoolConfig::enabled`], the default), the tree owns one shared
//! [`NodePool`] sized for its `Node<K, V>` layout:
//!
//! * **retire → recycle**: the cleanup routine retires detached nodes
//!   with a *recycle deferral* ([`recycle_deferred`]) instead of a plain
//!   drop; when the reclaimer proves the grace period elapsed, the
//!   deferral drops the node's key/value and pushes the block onto the
//!   pool (overflow falls through to the real allocator).
//! * **alloc → reuse**: allocation goes through a [`NodeCache`] — a
//!   per-handle (or per-call) unsynchronized cache over the shared pool —
//!   so hot loops pop recycled blocks without touching shared state.
//!
//! Reuse is ABA-safe *by construction*: the deferral only runs once no
//! live reference to the block can exist, which is exactly the guarantee
//! reclamation already provides for freeing (DESIGN.md §11). Under
//! [`Leaky`](nmbst_reclaim::Leaky) (`Reclaim::RECLAIMS == false`)
//! deferrals never run, so retired nodes keep leaking — the pool then
//! only ever reuses insert scratch that was discarded unpublished.

use crate::chaos::{self, Action, Point};
use crate::node::Node;
use crate::stats;
use nmbst_reclaim::{Deferred, NodePool};
use std::alloc::Layout;
use std::ptr;
use std::sync::Arc;

/// Default bound on a tree's shared free list, in nodes. Two nodes per
/// insert means this absorbs ~128 churned keys of garbage — enough to
/// make steady-state churn allocation-free, small enough (a few dozen KiB
/// for typical keys) that an idle tree is not hoarding memory.
pub const DEFAULT_POOL_CAPACITY: usize = 256;

/// How many blocks a handle's [`NodeCache`] keeps privately. Refills and
/// give-backs move blocks between this cache and the shared pool in
/// batches, so the shared lock is touched once per ~batch, not per node.
pub(crate) const HANDLE_CACHE_CAP: usize = 32;

/// Blocks moved from the shared pool into a cache per refill.
const REFILL_BATCH: usize = 8;

/// The `pool` knob on [`TreeConfig`](crate::TreeConfig): whether retired
/// nodes are recycled into new inserts, and how many free blocks the
/// tree may hold. One flag for A/B ablation — see the perf bin's
/// pool-on/pool-off cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Recycle retired nodes through a shared free list (default `true`).
    pub enabled: bool,
    /// Maximum free blocks the shared list holds; overflow is freed to
    /// the global allocator (default [`DEFAULT_POOL_CAPACITY`]).
    pub capacity: usize,
}

impl PoolConfig {
    /// Pooling off: every allocation hits the global allocator and every
    /// reclaimed node is freed — the pre-PR 4 behaviour.
    pub fn disabled() -> Self {
        PoolConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Pooling on with an explicit free-list bound.
    pub fn with_capacity(capacity: usize) -> Self {
        PoolConfig {
            enabled: true,
            capacity,
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            enabled: true,
            capacity: DEFAULT_POOL_CAPACITY,
        }
    }
}

/// An unsynchronized allocation cache over a tree's shared [`NodePool`].
///
/// Handles keep one alive across operations (capacity
/// [`HANDLE_CACHE_CAP`]); the plain API builds a transient zero-capacity
/// one per modify call, which then reads/writes the shared pool directly.
/// Either way this is the single choke point where node memory enters
/// and leaves an operation, so hit/miss accounting batches here in plain
/// fields and flushes to the pool's atomics on drop/repin.
pub(crate) struct NodeCache<'t> {
    /// `None` iff the tree was configured with the pool off.
    shared: Option<&'t NodePool>,
    local: Vec<*mut u8>,
    local_cap: usize,
    hits: u64,
    misses: u64,
}

impl<'t> NodeCache<'t> {
    /// A transient cache that keeps nothing locally (plain-API calls).
    pub(crate) fn direct(shared: Option<&'t NodePool>) -> Self {
        Self::with_local(shared, 0)
    }

    /// A cache holding up to `local_cap` blocks privately (handles).
    pub(crate) fn with_local(shared: Option<&'t NodePool>, local_cap: usize) -> Self {
        NodeCache {
            shared,
            local: Vec::new(),
            local_cap,
            hits: 0,
            misses: 0,
        }
    }

    /// Allocates and initializes one node, preferring pooled memory.
    pub(crate) fn alloc<T>(&mut self, value: T) -> *mut T {
        if let Some(pool) = self.shared {
            debug_assert_eq!(
                Layout::new::<T>(),
                pool.layout(),
                "cache serves exactly the tree's node layout"
            );
            if let Some(block) = self.local.pop().or_else(|| refill(&mut self.local, pool)) {
                self.hits += 1;
                stats::record_pool_hit();
                let node = block.cast::<T>();
                // SAFETY: pooled blocks are exclusively owned, uninitialized
                // memory of `T`'s layout (pool provenance contract).
                unsafe { ptr::write(node, value) };
                return node;
            }
            self.misses += 1;
        }
        stats::record_alloc();
        Box::into_raw(Box::new(value))
    }

    /// Drops `ptr`'s contents and returns its block to the cache/pool
    /// (or the global allocator when pooling is off or the pool is full).
    ///
    /// # Safety
    ///
    /// `ptr` must be an exclusively owned, never-published node from
    /// [`alloc`](Self::alloc) (or `Box::into_raw` of the same type).
    pub(crate) unsafe fn free<T>(&mut self, ptr: *mut T) {
        // SAFETY: exclusive ownership per contract.
        unsafe { ptr::drop_in_place(ptr) };
        if let Some(pool) = self.shared {
            debug_assert_eq!(Layout::new::<T>(), pool.layout());
            if self.local.len() < self.local_cap {
                self.local.push(ptr.cast());
            } else {
                // SAFETY: block provenance per contract, contents dropped.
                unsafe { pool.release(ptr.cast()) };
            }
        } else {
            // SAFETY: `alloc` fell through to `Box::new` (no pool).
            unsafe { std::alloc::dealloc(ptr.cast(), Layout::new::<T>()) };
        }
    }

    /// Publishes batched hit/miss counts into the shared pool's stats.
    pub(crate) fn flush_counters(&mut self) {
        if let Some(pool) = self.shared {
            if self.hits != 0 || self.misses != 0 {
                pool.note_usage(self.hits, self.misses);
                self.hits = 0;
                self.misses = 0;
            }
        }
    }
}

fn refill(local: &mut Vec<*mut u8>, pool: &NodePool) -> Option<*mut u8> {
    let mut first = None;
    pool.acquire_batch(REFILL_BATCH, |block| {
        if first.is_none() {
            first = Some(block);
        } else {
            local.push(block);
        }
    });
    first
}

impl Drop for NodeCache<'_> {
    fn drop(&mut self) {
        self.flush_counters();
        if let Some(pool) = self.shared {
            // SAFETY: every cached block satisfies the release contract
            // (came from this pool or `Box::into_raw` of the node type,
            // contents dropped before caching).
            unsafe { pool.release_batch(&mut self.local) };
        } else {
            debug_assert!(self.local.is_empty(), "cached blocks without a pool");
        }
    }
}

/// Builds the deferral that recycles `node` once its grace period has
/// elapsed: drop the key/value in place, then hand the block back to
/// `pool` (the [`Point::Recycle`] chaos hook can force the
/// fall-through-to-allocator path instead).
///
/// The deferral carries only a *raw* pointer to `pool` — no per-node
/// refcount traffic. The tree makes that sound by parking an `Arc` clone
/// of the pool inside the reclaimer
/// ([`Reclaim::hold`](nmbst_reclaim::Reclaim::hold)) at construction:
/// the reclaimer guarantees the token outlives every deferral it runs,
/// including on straggling collector threads.
///
/// # Safety
///
/// `node` must be unlinked and retired exactly once (the
/// [`RetireGuard::retire_deferred`](nmbst_reclaim::RetireGuard) contract
/// transfers to the caller) and must come from `Box::into_raw` or this
/// pool. The scheme running the deferral must prove the grace period
/// before calling it, and the caller must have parked a pool keepalive
/// in that scheme (see above) so `pool` is alive whenever the deferral
/// can run.
pub(crate) unsafe fn recycle_deferred<K: Send, V: Send>(
    node: *mut Node<K, V>,
    pool: &Arc<NodePool>,
) -> Deferred {
    unsafe fn recycle<K, V>(data: *mut (), ctx: *mut ()) {
        let node = data.cast::<Node<K, V>>();
        // SAFETY: the reclaimer holds a pool keepalive that outlives this
        // call (function contract).
        let pool = unsafe { &*(ctx as *const NodePool) };
        // SAFETY: the grace period elapsed — this deferral is the unique
        // owner. Drop the key and value; the block itself stays raw.
        unsafe { ptr::drop_in_place(node) };
        if chaos::hit(Point::Recycle) == Action::Abandon {
            // Chaos: pretend the pool declined; free to the allocator.
            // SAFETY: block provenance per the function contract.
            unsafe { std::alloc::dealloc(node.cast(), Layout::new::<Node<K, V>>()) };
        } else {
            // SAFETY: provenance per contract, contents just dropped.
            unsafe { pool.release(node.cast()) };
        }
    }
    let ctx = Arc::as_ptr(pool) as *mut ();
    // SAFETY: `recycle::<K, V>` releases exactly once; `K: Send, V: Send`
    // makes running it on a collector thread sound; leaking it uncalled
    // (Leaky) leaks only the node, as intended.
    unsafe { Deferred::from_raw(node.cast(), ctx, recycle::<K, V>) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;

    fn pool_for<K, V>(cap: usize) -> NodePool {
        NodePool::new(Layout::new::<Node<K, V>>(), cap)
    }

    #[test]
    fn alloc_free_round_trip_reuses_block() {
        let pool = pool_for::<u64, u64>(8);
        let mut cache = NodeCache::direct(Some(&pool));
        let a = Node::<u64, u64>::new_leaf_in(&mut cache, Key::Fin(1), Some(10));
        unsafe { cache.free(a) };
        let b = Node::<u64, u64>::new_leaf_in(&mut cache, Key::Fin(2), Some(20));
        assert_eq!(a, b, "freed block is reused LIFO");
        unsafe { cache.free(b) };
        drop(cache);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn disabled_cache_is_plain_malloc() {
        let mut cache = NodeCache::<'_>::direct(None);
        let a = Node::<u64, ()>::new_leaf_in(&mut cache, Key::Fin(1), Some(()));
        unsafe { cache.free(a) };
        drop(cache);
    }

    #[test]
    fn local_cache_batches_shared_traffic() {
        let pool = pool_for::<u64, ()>(64);
        // Seed the shared pool with a few blocks.
        {
            let mut seed = NodeCache::direct(Some(&pool));
            let nodes: Vec<_> = (0..6)
                .map(|i| Node::<u64, ()>::new_leaf_in(&mut seed, Key::Fin(i), Some(())))
                .collect();
            for n in nodes {
                unsafe { seed.free(n) };
            }
        }
        assert_eq!(pool.len(), 6);
        let mut cache = NodeCache::with_local(Some(&pool), 16);
        // One alloc refills a batch: the shared pool drains more than one.
        let n = Node::<u64, ()>::new_leaf_in(&mut cache, Key::Fin(9), Some(()));
        assert!(pool.len() < 6);
        unsafe { cache.free(n) };
        drop(cache); // gives all cached blocks back
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn free_drops_key_and_value() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let pool = pool_for::<u64, D>(8);
        let mut cache = NodeCache::direct(Some(&pool));
        let n = Node::<u64, D>::new_leaf_in(&mut cache, Key::Fin(1), Some(D(Arc::clone(&drops))));
        unsafe { cache.free(n) };
        assert_eq!(drops.load(Ordering::Relaxed), 1, "value dropped on free");
        drop(cache);
    }

    #[test]
    fn recycle_deferred_returns_block_to_pool() {
        let pool = Arc::new(pool_for::<u64, u64>(8));
        let node = Node::<u64, u64>::new_leaf(Key::Fin(7), Some(70));
        let d = unsafe { recycle_deferred(node, &pool) };
        assert_eq!(d.address(), node as usize);
        assert_eq!(pool.len(), 0);
        d.call();
        assert_eq!(pool.len(), 1, "block recycled, not freed");
        assert_eq!(
            Arc::strong_count(&pool),
            1,
            "deferrals borrow the pool raw — no refcount traffic"
        );
    }
}
