//! Multi-threaded correctness tests for the NM-BST.
//!
//! These exercise the paths the paper's proof sketch (§3.3) reasons
//! about: conflicting inserts, conflicting deletes, insert-helps-delete,
//! delete-helps-delete, and chain removal (multiple logically deleted
//! leaves excised by one splice).

use nmbst::{NmTreeMap, NmTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Simple deterministic per-thread generator (SplitMix64).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[test]
fn disjoint_key_ranges_all_inserted() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 2_000;
    let mut set: NmTreeSet<u64> = NmTreeSet::new();
    std::thread::scope(|s| {
        let set = &set;
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    assert!(set.insert(t * PER_THREAD + i));
                }
            });
        }
    });
    assert_eq!(set.len() as u64, THREADS * PER_THREAD);
    let shape = set.check_invariants().expect("invariants after inserts");
    assert_eq!(shape.user_keys as u64, THREADS * PER_THREAD);
}

#[test]
fn racing_inserts_of_same_keys_exactly_one_winner() {
    const THREADS: usize = 8;
    const KEYS: u64 = 512;
    let mut set: NmTreeSet<u64> = NmTreeSet::new();
    let wins = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let set = &set;
        let wins = &wins;
        for _ in 0..THREADS {
            s.spawn(move || {
                let mut local = 0;
                for k in 0..KEYS {
                    if set.insert(k) {
                        local += 1;
                    }
                }
                wins.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed) as u64, KEYS);
    assert_eq!(set.len() as u64, KEYS);
    set.check_invariants().unwrap();
}

#[test]
fn racing_deletes_of_same_keys_exactly_one_winner() {
    const THREADS: usize = 8;
    const KEYS: u64 = 512;
    let mut set: NmTreeSet<u64> = NmTreeSet::new();
    for k in 0..KEYS {
        set.insert(k);
    }
    let wins = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let set = &set;
        let wins = &wins;
        for _ in 0..THREADS {
            s.spawn(move || {
                let mut local = 0;
                for k in 0..KEYS {
                    if set.remove(&k) {
                        local += 1;
                    }
                }
                wins.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed) as u64, KEYS);
    assert_eq!(set.len(), 0);
    set.check_invariants().unwrap();
}

#[test]
fn per_key_conservation_under_mixed_churn() {
    // For every key: (#successful inserts - #successful removes) must
    // equal its final membership. This follows from linearizability of
    // the per-key insert/remove alternation and catches lost updates,
    // duplicated keys, and resurrection bugs.
    const THREADS: usize = 8;
    const OPS: usize = 20_000;
    const KEY_SPACE: u64 = 128; // small: maximum contention
    let mut set: NmTreeSet<u64> = NmTreeSet::new();
    let ins: Vec<AtomicUsize> = (0..KEY_SPACE).map(|_| AtomicUsize::new(0)).collect();
    let del: Vec<AtomicUsize> = (0..KEY_SPACE).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|s| {
        let set = &set;
        let ins = &ins;
        let del = &del;
        for t in 0..THREADS {
            s.spawn(move || {
                let mut rng = 0xDEADBEEF ^ (t as u64) << 32;
                for _ in 0..OPS {
                    let r = splitmix(&mut rng);
                    let key = r % KEY_SPACE;
                    if r & (1 << 40) == 0 {
                        if set.insert(key) {
                            ins[key as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    } else if set.remove(&key) {
                        del[key as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let shape = set.check_invariants().expect("invariants after churn");
    let mut expected = 0;
    for k in 0..KEY_SPACE {
        let i = ins[k as usize].load(Ordering::Relaxed);
        let d = del[k as usize].load(Ordering::Relaxed);
        assert!(
            i == d || i == d + 1,
            "key {k}: {i} inserts vs {d} removes — alternation broken"
        );
        let present = i == d + 1;
        assert_eq!(set.contains(&k), present, "key {k} membership");
        expected += present as usize;
    }
    assert_eq!(shape.user_keys, expected);
}

#[test]
fn readers_never_crash_during_heavy_churn() {
    const KEY_SPACE: u64 = 64;
    let mut set: NmTreeSet<u64> = NmTreeSet::new();
    for k in (0..KEY_SPACE).step_by(2) {
        set.insert(k);
    }
    let stop = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let set = &set;
        let stop = &stop;
        for t in 0..4u64 {
            s.spawn(move || {
                let mut rng = t.wrapping_mul(0xA24BAED4963EE407);
                for _ in 0..30_000 {
                    let k = splitmix(&mut rng) % KEY_SPACE;
                    if k.is_multiple_of(2) {
                        set.remove(&k);
                        set.insert(k);
                    } else {
                        set.insert(k);
                        set.remove(&k);
                    }
                }
                stop.fetch_add(1, Ordering::Release);
            });
        }
        for _ in 0..2 {
            s.spawn(move || {
                let mut rng = 7;
                while stop.load(Ordering::Acquire) < 4 {
                    let k = splitmix(&mut rng) % KEY_SPACE;
                    // Result is unpredictable; absence of UB/crash and
                    // post-hoc invariants are the assertion.
                    let _ = set.contains(&k);
                    let _ = set.count();
                }
            });
        }
    });
    set.check_invariants().unwrap();
}

#[test]
fn chain_removal_scenario_figure2() {
    // Build the Figure 2 situation deterministically: several deletes
    // whose victims lie along one access path, then let them race. The
    // invariant check proves the chain splice leaves a legal tree no
    // matter who wins.
    for _trial in 0..50 {
        let mut set: NmTreeSet<u64> = NmTreeSet::new();
        // A right-leaning path: 10 < 20 < ... < 80.
        for k in (1..=8).map(|i| i * 10) {
            set.insert(k);
        }
        std::thread::scope(|s| {
            let set = &set;
            // Deletes of keys along the same path, racing.
            for k in [20u64, 30, 40, 50, 60] {
                s.spawn(move || {
                    assert!(set.remove(&k));
                });
            }
        });
        for k in [20u64, 30, 40, 50, 60] {
            assert!(!set.contains(&k));
        }
        for k in [10u64, 70, 80] {
            assert!(set.contains(&k), "lost innocent key {k}");
        }
        set.check_invariants().unwrap();
    }
}

#[test]
fn insert_helps_conflicting_delete() {
    // Insert lands repeatedly at injection points being deleted: small
    // key space, deletes of neighbours while inserts target between them.
    for _trial in 0..30 {
        let mut set: NmTreeSet<u64> = NmTreeSet::new();
        for k in [10, 20, 30, 40] {
            set.insert(k);
        }
        std::thread::scope(|s| {
            let set = &set;
            s.spawn(move || {
                assert!(set.remove(&20));
            });
            s.spawn(move || {
                assert!(set.remove(&30));
            });
            s.spawn(move || {
                // Key 25 seeks into the region both deletes are tearing up.
                assert!(set.insert(25));
            });
        });
        assert!(set.contains(&25));
        assert!(!set.contains(&20));
        assert!(!set.contains(&30));
        set.check_invariants().unwrap();
    }
}

#[test]
fn map_values_survive_concurrent_churn_on_other_keys() {
    let map: NmTreeMap<u64, String> = NmTreeMap::new();
    for k in 0..50 {
        map.insert(k, format!("v{k}"));
    }
    std::thread::scope(|s| {
        let map = &map;
        s.spawn(move || {
            for round in 0..200u64 {
                for k in 50..80 {
                    map.insert(k, format!("r{round}"));
                }
                for k in 50..80 {
                    map.remove(&k);
                }
            }
        });
        s.spawn(move || {
            for _ in 0..2_000 {
                for k in 0..50 {
                    assert_eq!(map.get(&k), Some(format!("v{k}")));
                }
            }
        });
    });
}

#[test]
fn works_through_arc_across_spawned_threads() {
    use std::sync::Arc;
    let set: Arc<NmTreeSet<u64>> = Arc::new(NmTreeSet::new());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let set = Arc::clone(&set);
        handles.push(std::thread::spawn(move || {
            for i in 0..1000 {
                set.insert(t * 1000 + i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(set.count(), 4000);
}
