//! `ShardedMap`/`ShardedSet` against flat models: routing must be a
//! pure partition (every key readable back through the same front end),
//! merged ordered views must match a `BTreeMap`, and aggregated metrics
//! must add up exactly at quiescence.

use nmbst::{Ebr, ShardedMap, ShardedSet};
use std::collections::BTreeMap;
use std::sync::Barrier;

/// SplitMix64, same fixed-seed idiom as `properties.rs`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn matches_model_across_shard_counts() {
    for shards in [1usize, 2, 3, 8, 13] {
        let mut rng = Rng(0xCAFE + shards as u64);
        let mut map: ShardedMap<u64, u64, Ebr> = ShardedMap::with_shards(shards);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..4_000 {
            let r = rng.next();
            let k = r % 512;
            match r % 10 {
                0..=4 => {
                    let inserted = map.insert(k, r);
                    assert_eq!(inserted, !model.contains_key(&k), "shards={shards} k={k}");
                    model.entry(k).or_insert(r);
                }
                5..=6 => {
                    let removed = map.remove(&k);
                    assert_eq!(removed, model.remove(&k).is_some(), "shards={shards} k={k}");
                }
                _ => {
                    assert_eq!(map.get(&k), model.get(&k).copied(), "shards={shards} k={k}");
                }
            }
        }
        // Quiescent aggregates.
        assert_eq!(map.len(), model.len(), "shards={shards}");
        assert_eq!(map.count(), model.len(), "shards={shards}");
        assert_eq!(
            map.keys(),
            model.keys().copied().collect::<Vec<_>>(),
            "shards={shards}"
        );
        let collected = map.range_collect(100..400);
        let expected: Vec<(u64, u64)> = model.range(100..400).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(collected, expected, "shards={shards}: merged range");
        map.check_invariants()
            .unwrap_or_else(|e| panic!("shards={shards}: {e}"));
        // Metrics: exact at quiescence, aggregated across shards.
        assert_eq!(map.metrics().size_estimate, model.len() as i64);
    }
}

#[test]
fn handle_agrees_with_plain_front_end() {
    let map: ShardedMap<u64, u64, Ebr> = ShardedMap::with_shards(4);
    let mut h = map.handle();
    for k in 0..1_000 {
        assert!(h.insert(k, k * 7));
    }
    for k in 0..1_000 {
        // Handle writes visible through the plain routed API and back.
        assert_eq!(map.get(&k), Some(k * 7));
        assert_eq!(h.get(&k), Some(k * 7));
    }
    assert_eq!(h.remove_batch(0..500), 500);
    assert_eq!(h.insert_batch((0..10).map(|k| (k, k))), 10);
    let back = h.get_batch(vec![3, 999, 700, 250]);
    assert_eq!(back, vec![Some(3), Some(999 * 7), Some(700 * 7), None]);
    drop(h);
    let mut map = map;
    assert_eq!(map.len(), 510);
}

#[test]
fn bulk_extend_routes_and_keeps_first_duplicate() {
    let mut map: ShardedMap<u64, u64, Ebr> = ShardedMap::with_shards(5);
    let mut stream = Vec::new();
    let mut rng = Rng(7);
    for i in 0..2_000u64 {
        stream.push((rng.next() % 600, i));
    }
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for &(k, v) in &stream {
        model.entry(k).or_insert(v);
    }
    map.bulk_extend(stream);
    assert_eq!(map.len(), model.len());
    for (k, v) in &model {
        assert_eq!(map.get(k), Some(*v), "key {k}");
    }
    map.check_invariants().unwrap();
}

/// Each worker thread drives its own `ShardedMapHandle` over disjoint
/// key stripes; after the join every stripe must be fully present and
/// the aggregated metrics exact.
#[test]
fn concurrent_workers_with_per_worker_handles() {
    const WORKERS: u64 = 4;
    const PER: u64 = 2_000;
    let map: ShardedMap<u64, u64, Ebr> = ShardedMap::with_shards(8);
    let start = Barrier::new(WORKERS as usize);
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let map = &map;
            let start = &start;
            s.spawn(move || {
                let mut h = map.handle();
                start.wait();
                for i in 0..PER {
                    let k = w * PER + i;
                    assert!(h.insert(k, k));
                }
                for i in 0..PER {
                    let k = w * PER + i;
                    assert_eq!(h.get(&k), Some(k));
                }
                h.flush_stats();
            });
        }
    });
    let mut map = map;
    assert_eq!(map.len(), (WORKERS * PER) as usize);
    let m = map.metrics();
    assert_eq!(m.inserted, WORKERS * PER);
    assert_eq!(m.searches, WORKERS * PER);
    assert_eq!(m.size_estimate, (WORKERS * PER) as i64);
    map.check_invariants().unwrap();
}

/// A live never-repinned sharded handle becomes visible to `metrics()`
/// after `flush_stats` — the serving tier's sampling-tick contract.
#[test]
fn sharded_flush_stats_makes_live_worker_visible() {
    let map: ShardedMap<u64, u64, Ebr> = ShardedMap::with_shards(4);
    let mut h = map.handle();
    for k in 0..200 {
        h.insert(k, k);
    }
    h.flush_stats();
    assert_eq!(map.metrics().inserted, 200);
    drop(h);
    assert_eq!(map.metrics().inserted, 200, "no double count on drop");
}

#[test]
fn sharded_set_round_trip_and_merged_order() {
    let set: ShardedSet<u64, Ebr> = ShardedSet::with_shards(6);
    let mut h = set.handle();
    // Insert in descending order to make merged ascending output earn it.
    for k in (0..500).rev() {
        assert!(h.insert(k));
    }
    assert!(!h.insert(250));
    assert!(h.contains(&499));
    assert!(h.remove(&499));
    drop(h);
    let mut seen = Vec::new();
    set.range_for_each(10..20, |k| seen.push(*k));
    assert_eq!(seen, (10..20).collect::<Vec<_>>());
    let mut ordered = Vec::new();
    set.for_each(|k| ordered.push(*k));
    assert_eq!(ordered, (0..499).collect::<Vec<_>>());
    let mut set = set;
    assert_eq!(set.len(), 499);
    set.check_invariants().unwrap();
    set.clear();
    assert_eq!(set.len(), 0);
}

/// `execute_batch` against the sequential model: for every mixed batch,
/// the fused result (partition by shard → sort each run by `(key,
/// position)` → per-shard finger execution → scatter) must equal
/// executing the same ops one at a time in request order. Duplicate
/// keys inside one batch are the hard case — same-key ops land in the
/// same shard and the position tiebreak keeps them in input order.
#[test]
fn execute_batch_matches_sequential_model() {
    use nmbst::{BatchCmd, BatchScratch, BatchVerdict};
    for shards in [1usize, 2, 7] {
        let mut rng = Rng(0xBA7C + shards as u64);
        let map: ShardedMap<u64, u64, Ebr> = ShardedMap::with_shards(shards);
        let model: ShardedMap<u64, u64, Ebr> = ShardedMap::with_shards(shards);
        let mut h = map.handle();
        let mut mh = model.handle();
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        for round in 0..50 {
            // Small key range → plenty of intra-batch duplicates.
            let cmds: Vec<BatchCmd<u64, u64>> = (0..64)
                .map(|_| {
                    let r = rng.next();
                    let k = r % 48;
                    match r % 3 {
                        0 => BatchCmd::Insert(k, r),
                        1 => BatchCmd::Remove(k),
                        _ => BatchCmd::Get(k),
                    }
                })
                .collect();
            let expect: Vec<BatchVerdict<u64>> = cmds
                .iter()
                .map(|cmd| match cmd {
                    BatchCmd::Get(k) => match mh.get(k) {
                        Some(v) => BatchVerdict::Found(v),
                        None => BatchVerdict::Missing,
                    },
                    BatchCmd::Insert(k, v) => BatchVerdict::Added(mh.insert(*k, *v)),
                    BatchCmd::Remove(k) => BatchVerdict::Removed(mh.remove(k)),
                })
                .collect();
            h.execute_batch(&cmds, &mut scratch, &mut out);
            assert_eq!(out, expect, "shards={shards} round={round}");
        }
        drop(h);
        drop(mh);
        // Final states agree too.
        let mut a = Vec::new();
        map.for_each(|k, v| a.push((*k, *v)));
        let mut b = Vec::new();
        model.for_each(|k, v| b.push((*k, *v)));
        assert_eq!(a, b, "shards={shards}");
    }
}

/// The scatter in isolation: a batch arranged so request order is
/// maximally anti-correlated with shard order still replies in request
/// order, and an empty batch is a no-op that clears stale output.
#[test]
fn execute_batch_scatters_and_handles_empty() {
    use nmbst::{BatchCmd, BatchScratch, BatchVerdict};
    let map: ShardedMap<u64, u64, Ebr> = ShardedMap::with_shards(4);
    // One key per shard, ordered so consecutive requests alternate
    // shards (found via the public router).
    let mut per_shard: Vec<Option<u64>> = vec![None; 4];
    let mut k = 0u64;
    while per_shard.iter().any(Option::is_none) {
        let s = map.shard_of(&k);
        if per_shard[s].is_none() {
            per_shard[s] = Some(k);
        }
        k += 1;
    }
    let keys: Vec<u64> = (0..4).rev().filter_map(|s| per_shard[s]).collect();
    let mut h = map.handle();
    let mut scratch = BatchScratch::new();
    let mut out = Vec::new();
    let inserts: Vec<BatchCmd<u64, u64>> =
        keys.iter().map(|&k| BatchCmd::Insert(k, k + 7)).collect();
    h.execute_batch(&inserts, &mut scratch, &mut out);
    assert_eq!(out, vec![BatchVerdict::Added(true); 4]);
    let gets: Vec<BatchCmd<u64, u64>> = keys.iter().map(|&k| BatchCmd::Get(k)).collect();
    h.execute_batch(&gets, &mut scratch, &mut out);
    let want: Vec<BatchVerdict<u64>> = keys.iter().map(|&k| BatchVerdict::Found(k + 7)).collect();
    assert_eq!(out, want, "reply i must carry request i's key");
    h.execute_batch(&[], &mut scratch, &mut out);
    assert!(out.is_empty(), "empty batch clears the output");
}
