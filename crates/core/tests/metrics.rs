//! The metrics facade under concurrency: sharded counters must lose
//! nothing (exact sums, not estimates), handle batching must flush on
//! drop, and the exposition formats must carry every counter.

use nmbst::obs::{validate_prometheus, MetricsSnapshot, ServeGauges, DEPTH_BUCKETS};
use nmbst::{LatencyConfig, NmTreeMap, NmTreeSet, TreeConfig};
use nmbst_reclaim::{Ebr, Leaky};
use std::sync::Barrier;

/// N threads × M plain-API ops each ⇒ the counter sums are exactly N×M.
/// Relaxed sharded counters may be *observed* mid-flight, but once the
/// threads join nothing may be lost.
#[test]
fn sharded_counters_sum_exactly_across_threads() {
    const THREADS: usize = 8;
    const OPS: u64 = 1_000;
    let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
    let start = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let map = &map;
            let start = &start;
            s.spawn(move || {
                start.wait();
                for i in 0..OPS {
                    let key = t * OPS + i;
                    map.insert(key, key);
                    map.contains(&key);
                    map.remove(&key);
                }
            });
        }
    });

    let m = map.metrics();
    let n = THREADS as u64 * OPS;
    assert_eq!(m.inserts, n, "every insert call counted");
    assert_eq!(m.inserted, n, "disjoint keys: every insert succeeded");
    assert_eq!(m.searches, n);
    assert_eq!(m.removes, n);
    assert_eq!(m.removed, n);
    assert_eq!(m.size_estimate, 0, "inserted == removed");
    assert!(m.max_depth > 0);
    // Every modify op ran at least one descent (contended CAS failures
    // re-seek and record again; searches don't record depth), and the
    // sharded histogram must lose none of them.
    assert!(
        m.depth_hist.iter().sum::<u64>() >= 2 * n,
        "at least one histogram observation per insert and per remove"
    );
    assert!(m.depth_sum > 0);
}

/// The descent-depth histogram is the production-observable form of the
/// fat-leaf win: the same key stream at `leaf_cap = 1` must put its mass
/// in strictly deeper buckets than the default fat-leaf tree.
#[test]
fn depth_histogram_shows_fat_leaf_compression() {
    let mean_depth = |leaf_cap: usize| {
        let map: NmTreeMap<u64, u64, Ebr> =
            NmTreeMap::with_config(TreeConfig::default().with_leaf_cap(leaf_cap));
        // Shuffled stream (multiplicative hash of 0..1024) so both trees
        // are reasonably balanced rather than spines.
        for i in 0..1024u64 {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            map.insert(k, k);
        }
        let m = map.metrics();
        let observations: u64 = m.depth_hist.iter().sum();
        assert_eq!(observations, 1024, "uncontended: one descent per insert");
        (m.depth_sum as f64 / observations as f64, m.max_depth)
    };
    let (mean_fat, max_fat) = mean_depth(8);
    let (mean_thin, max_thin) = mean_depth(1);
    // The mean is taken over the whole growth stream (early inserts are
    // shallow in both trees), so the steady-state gap is diluted — still,
    // the fat tree must be measurably flatter.
    assert!(
        mean_fat + 0.5 < mean_thin,
        "fat leaves must shorten the mean descent: {mean_fat:.1} vs {mean_thin:.1}"
    );
    assert!(
        max_fat < max_thin,
        "and the max gauge must agree: {max_fat} vs {max_thin}"
    );
}

/// The same exactness through handles: per-handle pending counts are
/// plain (non-atomic) fields, flushed on unpin/repin and on drop.
#[test]
fn handle_batched_counters_flush_on_drop() {
    const THREADS: usize = 4;
    const OPS: u64 = 500;
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    let start = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let set = &set;
            let start = &start;
            s.spawn(move || {
                let mut h = set.handle();
                start.wait();
                for i in 0..OPS {
                    let key = t * OPS + i;
                    h.insert(key);
                    h.contains(&key);
                }
                // `h` drops here: its batched counts must not be lost.
            });
        }
    });

    let m = set.metrics();
    let n = THREADS as u64 * OPS;
    assert_eq!(m.inserts, n);
    assert_eq!(m.inserted, n);
    assert_eq!(m.searches, n);
    assert_eq!(m.size_estimate, n as i64);
}

/// Mid-lifetime visibility: repin flushes, so long-lived handles don't
/// hide their counts until drop.
#[test]
fn handle_repin_publishes_batched_counts() {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    let mut h = set.handle();
    for k in 0..10 {
        h.insert(k);
    }
    h.repin();
    let m = set.metrics();
    assert_eq!(m.inserts, 10);
    assert_eq!(m.inserted, 10);
    drop(h);
    assert_eq!(set.metrics().inserts, 10, "drop after flush adds nothing");
}

/// Failed modify operations count as attempts but not successes.
#[test]
fn success_counters_track_actual_mutations() {
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
    assert!(set.insert(1));
    assert!(!set.insert(1));
    assert!(!set.remove(&2));
    assert!(set.remove(&1));
    let m = set.metrics();
    assert_eq!(m.inserts, 2);
    assert_eq!(m.inserted, 1);
    assert_eq!(m.removes, 2);
    assert_eq!(m.removed, 1);
    assert_eq!(m.size_estimate, 0);
}

/// Both exposition formats name every counter and agree on the values.
#[test]
fn exposition_formats_are_complete_and_consistent() {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    for k in 0..5 {
        set.insert(k);
    }
    set.remove(&0);
    set.flush();
    let m = set.metrics();

    let json = m.to_json();
    for key in [
        "searches",
        "inserts",
        "inserted",
        "removes",
        "removed",
        "helps",
        "size_estimate",
        "max_depth",
        "reclaim_epoch",
        "reclaim_epoch_lag",
        "reclaim_pinned_threads",
        "reclaim_retired_backlog",
        "depth_hist",
        "depth_sum",
    ] {
        assert!(json.contains(&format!("\"{key}\":")), "json missing {key}");
    }
    assert!(json.contains("\"inserted\":5"));
    assert!(json.contains("\"size_estimate\":4"));
    // The histogram renders as a JSON array with one cell per bucket.
    let hist = json.split("\"depth_hist\":[").nth(1).unwrap();
    let hist = hist.split(']').next().unwrap();
    assert_eq!(hist.split(',').count(), DEPTH_BUCKETS);

    let prom = m.to_prometheus();
    for metric in [
        "nmbst_searches_total",
        "nmbst_inserts_total",
        "nmbst_inserted_total",
        "nmbst_removes_total",
        "nmbst_removed_total",
        "nmbst_helps_total",
        "nmbst_size_estimate",
        "nmbst_max_depth",
        "nmbst_reclaim_epoch",
        "nmbst_reclaim_epoch_lag",
        "nmbst_reclaim_pinned_threads",
        "nmbst_reclaim_retired_backlog",
    ] {
        assert!(
            prom.contains(&format!("# TYPE {metric} ")),
            "prometheus missing TYPE for {metric}"
        );
        assert!(
            prom.contains(&format!("\n{metric} ")),
            "missing sample for {metric}"
        );
    }
    assert!(prom.contains("nmbst_inserted_total 5\n"));
    assert!(prom.contains("nmbst_size_estimate 4\n"));

    // The depth histogram uses the Prometheus histogram convention:
    // cumulative le-buckets, +Inf, _sum, and _count.
    assert!(prom.contains("# TYPE nmbst_descent_depth histogram"));
    for needle in [
        "nmbst_descent_depth_bucket{le=\"1\"} ",
        "nmbst_descent_depth_bucket{le=\"3\"} ",
        "nmbst_descent_depth_bucket{le=\"+Inf\"} ",
        "nmbst_descent_depth_sum ",
        "nmbst_descent_depth_count ",
    ] {
        assert!(prom.contains(needle), "prometheus missing {needle}");
    }
    // 6 modify ops ⇒ count 6, and +Inf agrees with _count.
    assert!(prom.contains("nmbst_descent_depth_bucket{le=\"+Inf\"} 6\n"));
    assert!(prom.contains("nmbst_descent_depth_count 6\n"));

    // Latency histograms ride along in both formats (empty but present
    // when `obs-latency` is off — the snapshot fields are
    // unconditional, only recording is gated).
    assert!(json.contains("\"latency\":{\"get\":{\"count\":"), "{json}");
    assert!(json.contains("\"slow_ops\":"), "{json}");
    assert!(prom.contains("# TYPE nmbst_op_latency_ns histogram"));
    for op in ["get", "insert", "remove", "batch", "range"] {
        assert!(
            prom.contains(&format!("nmbst_op_latency_ns_count{{op=\"{op}\"}} ")),
            "prometheus missing latency series for {op}"
        );
    }
    assert!(prom.contains("nmbst_slow_ops_captured "));

    // The real exposition output must pass the strict in-tree validator
    // — the same check the server's scrape tests apply end to end.
    validate_prometheus(&prom)
        .unwrap_or_else(|e| panic!("to_prometheus fails its own validator: {e}\n{prom}"));

    // Snapshots are plain clonable values (histograms make them too big
    // to be `Copy`); Display goes through and the default snapshot is
    // all zeros.
    assert!(!m.clone().to_string().is_empty());
    assert_eq!(MetricsSnapshot::default().inserted, 0);
}

/// `merge` edge cases: the default snapshot is a two-sided identity,
/// and merging two live snapshots adds every counter and histogram cell
/// exactly while max-gauges take the max.
#[test]
fn snapshot_merge_identity_and_exactness() {
    let mut empty = MetricsSnapshot::default();
    empty.merge(&MetricsSnapshot::default());
    assert_eq!(empty, MetricsSnapshot::default(), "empty ⊕ empty = empty");

    // Latency disabled so the snapshots carry no timing-dependent state
    // (slow_ops order is ns-sorted, which would not be identity-stable).
    let quiet = TreeConfig::default().with_latency(LatencyConfig::disabled());
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::with_config(quiet);
    for k in 0..32 {
        set.insert(k);
    }
    set.remove(&0);
    set.flush();
    let a = set.metrics();
    assert!(a.inserts > 0);

    let mut left = a.clone();
    left.merge(&MetricsSnapshot::default());
    assert_eq!(left, a, "nonempty ⊕ empty = nonempty");
    let mut right = MetricsSnapshot::default();
    right.merge(&a);
    assert_eq!(right, a, "empty ⊕ nonempty = nonempty");

    // A second tree with thin leaves: same keys, deeper descents.
    let deep: NmTreeSet<u64, Ebr> = NmTreeSet::with_config(
        TreeConfig::default()
            .with_leaf_cap(1)
            .with_latency(LatencyConfig::disabled()),
    );
    for k in 0..256 {
        deep.insert(k);
    }
    deep.flush();
    let b = deep.metrics();
    assert!(b.max_depth > a.max_depth, "thin leaves descend deeper");

    let mut m = a.clone();
    m.merge(&b);
    assert_eq!(m.searches, a.searches + b.searches);
    assert_eq!(m.inserts, a.inserts + b.inserts);
    assert_eq!(m.inserted, a.inserted + b.inserted);
    assert_eq!(m.removes, a.removes + b.removes);
    assert_eq!(m.removed, a.removed + b.removed);
    assert_eq!(m.size_estimate, a.size_estimate + b.size_estimate);
    assert_eq!(m.depth_sum, a.depth_sum + b.depth_sum, "depth_sum adds");
    assert_eq!(m.max_depth, a.max_depth.max(b.max_depth), "max_depth maxes");
    for (i, cell) in m.depth_hist.iter().enumerate() {
        assert_eq!(
            *cell,
            a.depth_hist[i] + b.depth_hist[i],
            "depth_hist[{i}] adds cellwise"
        );
    }
}

/// The serving-tier gauges ride the same snapshot: zero-defaulted (so a
/// bare tree's snapshot is unchanged and the merge identity holds),
/// summed cell-by-cell on merge (workers own disjoint connections), and
/// present in both exposition formats — with the backpressure counter
/// named `*_total` so the strict validator accepts it.
#[test]
fn serve_gauges_merge_and_expose() {
    // Defaults are all-zero, so a tree snapshot (which never sets them)
    // keeps the identity property the previous test established.
    assert_eq!(ServeGauges::default().open_connections, 0);
    assert_eq!(MetricsSnapshot::default().serve, ServeGauges::default());

    let a = MetricsSnapshot {
        serve: ServeGauges {
            open_connections: 3,
            read_paused_connections: 1,
            write_buffered_bytes: 4096,
            backpressure_events: 7,
        },
        ..MetricsSnapshot::default()
    };
    let b = MetricsSnapshot {
        serve: ServeGauges {
            open_connections: 5,
            read_paused_connections: 0,
            write_buffered_bytes: 100,
            backpressure_events: 2,
        },
        ..MetricsSnapshot::default()
    };

    // Identity on both sides.
    let mut left = a.clone();
    left.merge(&MetricsSnapshot::default());
    assert_eq!(left, a, "serve ⊕ empty = serve");
    let mut right = MetricsSnapshot::default();
    right.merge(&a);
    assert_eq!(right, a, "empty ⊕ serve = serve");

    // Exact sums across workers.
    let mut m = a.clone();
    m.merge(&b);
    assert_eq!(m.serve.open_connections, 8);
    assert_eq!(m.serve.read_paused_connections, 1);
    assert_eq!(m.serve.write_buffered_bytes, 4196);
    assert_eq!(m.serve.backpressure_events, 9);

    // Both exposition formats carry the gauges with the merged values.
    let json = m.to_json();
    assert!(json.contains("\"open_connections\":8"), "{json}");
    assert!(json.contains("\"read_paused_connections\":1"), "{json}");
    assert!(json.contains("\"write_buffered_bytes\":4196"), "{json}");
    assert!(json.contains("\"backpressure_events\":9"), "{json}");

    let prom = m.to_prometheus();
    assert!(prom.contains("nmbst_serve_open_connections 8\n"));
    assert!(prom.contains("nmbst_serve_read_paused_connections 1\n"));
    assert!(prom.contains("nmbst_serve_write_buffered_bytes 4196\n"));
    assert!(prom.contains("nmbst_serve_backpressure_events_total 9\n"));
    assert!(prom.contains("# TYPE nmbst_serve_open_connections gauge"));
    assert!(prom.contains("# TYPE nmbst_serve_backpressure_events_total counter"));
    validate_prometheus(&prom).unwrap_or_else(|e| panic!("serve gauges break the validator: {e}"));
}

/// With `sample_shift = 0` every point op is timed, so the per-op-type
/// latency histograms count calls exactly — and merging two snapshots
/// preserves counts and nanosecond sums to the bit.
#[cfg(feature = "obs-latency")]
#[test]
fn latency_histograms_count_exactly_and_merge_exactly() {
    let always = TreeConfig::default().with_latency(LatencyConfig::default().with_sample_shift(0));
    let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::with_config(always);
    for k in 0..10 {
        map.insert(k, k);
    }
    for k in 0..5 {
        map.contains(&k);
    }
    map.remove(&0);
    let mut range_hits = 0;
    map.range_for_each(2..=4, |_, _| range_hits += 1);
    assert_eq!(range_hits, 3);
    let a = map.metrics();
    assert_eq!(a.latency.insert.len(), 10, "every insert timed");
    assert_eq!(a.latency.get.len(), 5, "every contains timed");
    assert_eq!(a.latency.remove.len(), 1);
    assert_eq!(a.latency.range.len(), 1, "range timed per call");
    assert!(a.latency.insert.sum() > 0, "real durations recorded");

    // Handle ops buffer latency samples; drop flushes them, and batch
    // calls are one sample per call regardless of key count.
    let map2: NmTreeMap<u64, u64, Ebr> = NmTreeMap::with_config(always);
    {
        let mut h = map2.handle();
        for k in 0..7 {
            h.insert(k, k);
        }
        h.insert_batch((10..20).map(|k| (k, k)));
        let hits = h.get_batch(0..4u64);
        assert_eq!(hits.iter().filter(|v| v.is_some()).count(), 4);
    }
    let b = map2.metrics();
    assert_eq!(b.latency.insert.len(), 7, "handle inserts flushed on drop");
    assert_eq!(b.latency.batch.len(), 2, "one sample per batch call");

    let mut m = a.clone();
    m.merge(&b);
    assert_eq!(m.latency.insert.len(), 17, "merge adds counts exactly");
    assert_eq!(
        m.latency.insert.sum(),
        a.latency.insert.sum() + b.latency.insert.sum(),
        "merge adds nanosecond sums exactly"
    );
    assert_eq!(
        m.latency.insert.max(),
        a.latency.insert.max().max(b.latency.insert.max())
    );
    assert_eq!(m.latency.len(), a.latency.len() + b.latency.len());

    // Disabled recording stays empty even though the fields exist.
    let off: NmTreeMap<u64, u64, Ebr> =
        NmTreeMap::with_config(TreeConfig::default().with_latency(LatencyConfig::disabled()));
    off.insert(1, 1);
    off.contains(&1);
    assert!(off.metrics().latency.is_empty());
}

/// Reclamation gauges surface through the tree-level snapshot: a pinned
/// guard shows up, and flushing drains the backlog.
#[test]
fn reclaim_gauges_flow_through_tree_metrics() {
    let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
    for k in 0..64 {
        map.insert(k, k);
    }
    for k in 0..64 {
        map.remove(&k);
    }
    // 64 removed leaves (plus internals) retired on this thread; before
    // any flush some backlog must be visible somewhere (local bags or
    // sealed pending bags).
    let m = map.metrics();
    assert!(
        m.reclaim.retired_backlog > 0,
        "retired nodes must be visible in the backlog gauge (got {m:?})"
    );

    // Handles pin lazily: the guard appears on the first operation and
    // stays held until repin/unpin/drop.
    let mut held = map.handle();
    held.contains(&0);
    let m = map.metrics();
    assert!(
        m.reclaim.pinned_threads >= 1,
        "a handle that has operated holds a pin (got {:?})",
        m.reclaim
    );
    drop(held);
}

/// The flush_stats bugfix: a long-lived handle whose re-pin budget is
/// never exhausted used to be invisible to `metrics()` until it was
/// dropped — the batched counts only flushed on repin/unpin/drop. An
/// explicit `flush_stats` must publish them immediately, without
/// disturbing the guard.
#[test]
fn flush_stats_publishes_counts_from_live_handle() {
    let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
    // A budget far larger than the op count: this handle never re-pins
    // after its first op, so nothing flushes organically.
    let mut h = map.handle().with_repin_every(1_000_000);
    for k in 0..100 {
        h.insert(k, k);
    }
    for k in 0..50 {
        h.contains(&k);
    }
    // The bug: a snapshot taken now used to show none of the 150 ops.
    h.flush_stats();
    let m = map.metrics();
    assert_eq!(m.inserts, 100, "inserts visible after flush_stats");
    assert_eq!(m.inserted, 100);
    assert_eq!(m.searches, 50, "searches visible after flush_stats");
    assert_eq!(m.size_estimate, 100);

    // flush_stats must not invalidate the handle: it keeps operating,
    // and a second flush publishes only the delta.
    for k in 100..120 {
        h.insert(k, k);
    }
    h.flush_stats();
    assert_eq!(map.metrics().inserted, 120);
    drop(h);
    // Drop after an explicit flush must not double-count.
    assert_eq!(map.metrics().inserted, 120);

    // The set handle exposes the same valve.
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    let mut sh = set.handle().with_repin_every(1_000_000);
    for k in 0..40 {
        sh.insert(k);
    }
    sh.flush_stats();
    assert_eq!(set.metrics().inserted, 40);
}
