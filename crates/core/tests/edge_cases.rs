//! Edge cases: extreme key values, zero-sized and heap-heavy values,
//! non-`Copy` keys, tiny trees, and boundary shapes.

use nmbst::{Ebr, Leaky, NmTreeMap, NmTreeSet};

#[test]
fn extreme_integer_keys() {
    // Sentinels live in the Key enum, so *no* integer value is reserved
    // (unlike the C baselines which sacrifice u64::MAX and MAX-1).
    let mut set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    for k in [0, 1, u64::MAX - 1, u64::MAX, u64::MAX / 2] {
        assert!(set.insert(k), "insert {k}");
        assert!(set.contains(&k));
    }
    assert_eq!(set.keys(), vec![0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX]);
    assert_eq!(set.first(), Some(0));
    assert_eq!(set.last(), Some(u64::MAX));
    for k in [0, 1, u64::MAX - 1, u64::MAX, u64::MAX / 2] {
        assert!(set.remove(&k));
    }
    set.check_invariants().unwrap();
}

#[test]
fn signed_keys_across_zero() {
    let mut set: NmTreeSet<i64, Ebr> = NmTreeSet::new();
    for k in [i64::MIN, -1, 0, 1, i64::MAX] {
        assert!(set.insert(k));
    }
    assert_eq!(set.keys(), vec![i64::MIN, -1, 0, 1, i64::MAX]);
    set.check_invariants().unwrap();
}

#[test]
fn single_key_lifecycle() {
    let mut set: NmTreeSet<u32, Ebr> = NmTreeSet::new();
    for _ in 0..100 {
        assert!(set.insert(7));
        assert_eq!(set.len(), 1);
        assert!(set.remove(&7));
        assert_eq!(set.len(), 0);
        set.check_invariants().unwrap();
    }
}

#[test]
fn two_keys_all_delete_orders() {
    for (first, second) in [(1u32, 2u32), (2, 1)] {
        let mut set: NmTreeSet<u32, Ebr> = NmTreeSet::new();
        set.insert(1);
        set.insert(2);
        assert!(set.remove(&first));
        assert!(set.contains(&second));
        assert!(!set.contains(&first));
        set.check_invariants().unwrap();
        assert!(set.remove(&second));
        assert_eq!(set.len(), 0);
        set.check_invariants().unwrap();
    }
}

#[test]
fn string_keys_heavy_churn() {
    let mut set: NmTreeSet<String, Ebr> = NmTreeSet::new();
    let words: Vec<String> = (0..200).map(|i| format!("key-{:03}", i % 50)).collect();
    for (i, w) in words.iter().enumerate() {
        if i % 3 == 2 {
            set.remove(w);
        } else {
            set.insert(w.clone());
        }
    }
    set.check_invariants().unwrap();
    // Keys come back in lexicographic order.
    let keys = set.keys();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn tuple_keys_lexicographic() {
    let mut set: NmTreeSet<(u8, u8), Ebr> = NmTreeSet::new();
    set.insert((1, 9));
    set.insert((2, 0));
    set.insert((1, 0));
    assert_eq!(set.keys(), vec![(1, 0), (1, 9), (2, 0)]);
    let mut got = Vec::new();
    set.range_for_each((1, 0)..(2, 0), |k| got.push(*k));
    assert_eq!(got, vec![(1, 0), (1, 9)]);
}

#[test]
fn zero_sized_values() {
    let map: NmTreeMap<u32, (), Ebr> = NmTreeMap::new();
    assert!(map.insert(1, ()));
    assert_eq!(map.get(&1), Some(()));
    assert_eq!(map.remove_get(&1), Some(()));
    assert_eq!(map.remove_get(&1), None);
}

#[test]
fn large_values_move_without_copying_tree() {
    let map: NmTreeMap<u32, Vec<u8>, Leaky> = NmTreeMap::new();
    map.insert(1, vec![0xAB; 1 << 20]);
    let len = map.with_value(&1, |v| v.len());
    assert_eq!(len, Some(1 << 20));
    let taken = map.remove_get(&1).unwrap();
    assert_eq!(taken.len(), 1 << 20);
    assert!(taken.iter().all(|&b| b == 0xAB));
}

#[test]
fn count_is_exact_at_quiescence() {
    let set: NmTreeSet<u32, Ebr> = NmTreeSet::new();
    assert_eq!(set.count(), 0);
    for k in 0..123 {
        set.insert(k);
    }
    assert_eq!(set.count(), 123);
}

#[test]
fn clear_reclaims_everything() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    struct D(Arc<AtomicUsize>);
    impl Drop for D {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    let drops = Arc::new(AtomicUsize::new(0));
    let mut map: NmTreeMap<u32, D, Ebr> = NmTreeMap::new();
    for k in 0..50 {
        map.insert(k, D(Arc::clone(&drops)));
    }
    map.clear();
    assert_eq!(
        drops.load(Ordering::Relaxed),
        50,
        "clear frees values eagerly"
    );
    assert!(map.is_empty());
    // Tree remains fully usable.
    map.insert(1, D(Arc::clone(&drops)));
    assert!(map.contains(&1));
}

#[test]
fn reverse_and_shuffled_insert_orders_agree() {
    let asc: Vec<u32> = (0..300).collect();
    let desc: Vec<u32> = (0..300).rev().collect();
    let mut shuffled: Vec<u32> = (0..300).collect();
    // Deterministic Fisher-Yates.
    let mut x = 0x243F6A8885A308D3u64;
    for i in (1..shuffled.len()).rev() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        shuffled.swap(i, (x % (i as u64 + 1)) as usize);
    }
    for order in [asc, desc, shuffled] {
        let mut set: NmTreeSet<u32, Ebr> = order.iter().copied().collect();
        assert_eq!(set.keys(), (0..300).collect::<Vec<_>>());
        set.check_invariants().unwrap();
    }
}

#[test]
fn boxed_reclaimer_choice_is_a_type_parameter_only() {
    // The two reclaimers expose identical tree behaviour.
    fn exercise<R: nmbst::Reclaim>() {
        let set: NmTreeSet<u32, R> = NmTreeSet::new();
        assert!(set.insert(1));
        assert!(set.remove(&1));
        assert!(!set.contains(&1));
    }
    exercise::<Ebr>();
    exercise::<Leaky>();
}
