//! Property-style tests: the tree agrees with `BTreeMap`/`BTreeSet`
//! models on pseudo-random operation sequences, and its structural
//! invariants hold after arbitrary histories.
//!
//! Cases come from a fixed-seed SplitMix64 stream (no external
//! property-testing crate in this offline build), so runs are identical
//! everywhere and a failing case index pins the exact sequence.

use nmbst::{Ebr, Key, NmTreeMap, NmTreeSet, TagMode};
use std::collections::{BTreeMap, BTreeSet};

/// SplitMix64 (Steele et al.): tiny, full-period, well-mixed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(i32),
    Remove(i32),
    Contains(i32),
}

fn gen_ops(rng: &mut Rng, key_range: i32, max_len: u64) -> Vec<Op> {
    let len = 1 + rng.below(max_len);
    (0..len)
        .map(|_| {
            let k = rng.below(key_range as u64) as i32;
            match rng.below(3) {
                0 => Op::Insert(k),
                1 => Op::Remove(k),
                _ => Op::Contains(k),
            }
        })
        .collect()
}

#[test]
fn matches_btreeset_model() {
    let mut rng = Rng(0x0001_5E7A);
    for case in 0..128 {
        let ops = gen_ops(&mut rng, 64, 400);
        let mut model = BTreeSet::new();
        let mut set: NmTreeSet<i32, Ebr> = NmTreeSet::new();
        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Insert(k) => assert_eq!(
                    set.insert(k),
                    model.insert(k),
                    "case {case}, op {i}: insert({k}) diverged (ops: {ops:?})"
                ),
                Op::Remove(k) => assert_eq!(
                    set.remove(&k),
                    model.remove(&k),
                    "case {case}, op {i}: remove({k}) diverged (ops: {ops:?})"
                ),
                Op::Contains(k) => assert_eq!(
                    set.contains(&k),
                    model.contains(&k),
                    "case {case}, op {i}: contains({k}) diverged (ops: {ops:?})"
                ),
            }
        }
        assert_eq!(set.keys(), model.iter().copied().collect::<Vec<_>>());
        let shape = set
            .check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(shape.user_keys, model.len(), "case {case}: size diverged");
    }
}

#[test]
fn map_values_match_model() {
    let mut rng = Rng(0x0002_3A9D);
    for case in 0..128 {
        let ops = gen_ops(&mut rng, 48, 300);
        let mut model: BTreeMap<i32, i64> = BTreeMap::new();
        let map: NmTreeMap<i32, i64, Ebr> = NmTreeMap::new();
        for (i, &op) in ops.iter().enumerate() {
            let stamp = i as i64;
            match op {
                Op::Insert(k) => {
                    // The tree rejects duplicates (no update), mirror that.
                    let inserted = map.insert(k, stamp);
                    let expected = !model.contains_key(&k);
                    if expected {
                        model.insert(k, stamp);
                    }
                    assert_eq!(inserted, expected, "case {case}, op {i}: insert({k})");
                }
                Op::Remove(k) => {
                    assert_eq!(
                        map.remove_get(&k),
                        model.remove(&k),
                        "case {case}, op {i}: remove({k})"
                    );
                }
                Op::Contains(k) => {
                    assert_eq!(
                        map.get(&k),
                        model.get(&k).copied(),
                        "case {case}, op {i}: get({k})"
                    );
                }
            }
        }
        for (k, v) in &model {
            assert_eq!(map.get(k), Some(*v), "case {case}: final get({k})");
        }
    }
}

#[test]
fn cas_only_variant_matches_model() {
    // §6: "our algorithm can be easily modified to use only CAS".
    let mut rng = Rng(0x0003_CA5B);
    for case in 0..128 {
        let ops = gen_ops(&mut rng, 32, 200);
        let mut model = BTreeSet::new();
        let mut set: NmTreeSet<i32, Ebr> = NmTreeSet::with_tag_mode(TagMode::CasLoop);
        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Insert(k) => assert_eq!(
                    set.insert(k),
                    model.insert(k),
                    "case {case}, op {i}: insert({k}) diverged (ops: {ops:?})"
                ),
                Op::Remove(k) => assert_eq!(
                    set.remove(&k),
                    model.remove(&k),
                    "case {case}, op {i}: remove({k}) diverged (ops: {ops:?})"
                ),
                Op::Contains(k) => assert_eq!(
                    set.contains(&k),
                    model.contains(&k),
                    "case {case}, op {i}: contains({k}) diverged (ops: {ops:?})"
                ),
            }
        }
        set.check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

#[test]
fn key_ordering_total_and_sentinels_above() {
    let mut rng = Rng(0x0004_0EDE);
    for _ in 0..512 {
        let a = rng.next() as i64;
        let b = rng.next() as i64;
        let (ka, kb) = (Key::Fin(a), Key::Fin(b));
        assert_eq!(ka.cmp(&kb), a.cmp(&b));
        assert!(Key::Fin(a) < Key::Inf0);
        assert!(Key::Fin(a) < Key::Inf1);
        assert!(Key::Fin(a) < Key::Inf2);
    }
    // Extremes too, which random sampling would rarely pick.
    for a in [i64::MIN, -1, 0, 1, i64::MAX] {
        assert!(Key::Fin(a) < Key::Inf0);
        assert!(Key::Fin(a) < Key::Inf1);
        assert!(Key::Fin(a) < Key::Inf2);
    }
}

#[test]
fn interleaved_two_batches_concurrently() {
    let mut rng = Rng(0x0005_BA7C);
    for case in 0..16 {
        let gen_keys = |rng: &mut Rng| {
            let target = 1 + rng.below(127);
            let mut keys = BTreeSet::new();
            while (keys.len() as u64) < target {
                keys.insert(rng.below(2048));
            }
            keys
        };
        let keys_a = gen_keys(&mut rng);
        let keys_b = gen_keys(&mut rng);

        // Two threads insert their batches concurrently, then one removes
        // its batch. Since removals of shared keys race with nothing
        // after the join, the final state is keys_a \ keys_b exactly.
        let mut set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
        std::thread::scope(|s| {
            let set = &set;
            let a = keys_a.clone();
            let b = keys_b.clone();
            s.spawn(move || {
                for k in a {
                    set.insert(k);
                }
            });
            s.spawn(move || {
                for k in b {
                    set.insert(k);
                }
            });
        });
        for k in &keys_b {
            assert!(set.remove(k), "case {case}: remove({k})");
        }
        let expected: Vec<u64> = keys_a.difference(&keys_b).copied().collect();
        assert_eq!(set.keys(), expected, "case {case}");
        set.check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

/// Bulk construction from arbitrary iterators must match `insert`-loop
/// semantics exactly: any order accepted, duplicate keys keep the
/// *first* occurrence, and the built tree is structurally valid. Runs
/// the same seeded cases through the map and set `FromIterator` routes
/// (which must agree — the set route historically diverged by going
/// through `from_sorted_iter`).
#[test]
fn bulk_construction_from_shuffled_duplicated_streams() {
    let mut rng = Rng(0xB17D_0CAB);
    for case in 0..24 {
        // A stream with heavy duplication: keys drawn from a small
        // range, values tagged with the occurrence index so we can tell
        // which duplicate survived.
        let len = 1 + rng.below(300);
        let stream: Vec<(u64, u64)> = (0..len).map(|i| (rng.below(1 + len / 2), i)).collect();

        // Model: first occurrence wins, like `insert` on a fresh map.
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &(k, v) in &stream {
            model.entry(k).or_insert(v);
        }

        let mut map: NmTreeMap<u64, u64, Ebr> = stream.iter().copied().collect();
        let shape = map
            .check_invariants()
            .unwrap_or_else(|e| panic!("case {case} (map): {e}"));
        assert_eq!(shape.user_keys, model.len(), "case {case}: key count");
        for (k, v) in &model {
            assert_eq!(map.get(k), Some(*v), "case {case}: map[{k}]");
        }
        assert_eq!(
            map.keys(),
            model.keys().copied().collect::<Vec<_>>(),
            "case {case}: key order"
        );

        let mut set: NmTreeSet<u64, Ebr> = stream.iter().map(|&(k, _)| k).collect();
        set.check_invariants()
            .unwrap_or_else(|e| panic!("case {case} (set): {e}"));
        assert_eq!(
            set.keys(),
            model.keys().copied().collect::<Vec<_>>(),
            "case {case}: set keys"
        );
    }
}

/// `Extend` onto a *populated* tree must keep the same first-wins
/// contract: keys already present reject the incoming value, duplicate
/// keys within the extension keep their first occurrence.
#[test]
fn extend_populated_tree_from_shuffled_duplicated_streams() {
    let mut rng = Rng(0x5EED_E47E_u64.wrapping_mul(3));
    for case in 0..12 {
        let pre_len = 1 + rng.below(100);
        let ext_len = 1 + rng.below(200);
        let key_space = 1 + (pre_len + ext_len) / 2;
        let pre: Vec<(u64, u64)> = (0..pre_len)
            .map(|i| (rng.below(key_space), 10_000 + i))
            .collect();
        let ext: Vec<(u64, u64)> = (0..ext_len)
            .map(|i| (rng.below(key_space), 20_000 + i))
            .collect();

        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        for &(k, v) in &pre {
            model.entry(k).or_insert(v);
            map.insert(k, v);
        }
        map.extend(ext.iter().copied());
        for &(k, v) in &ext {
            model.entry(k).or_insert(v);
        }

        map.check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(map.len(), model.len(), "case {case}");
        for (k, v) in &model {
            assert_eq!(map.get(k), Some(*v), "case {case}: map[{k}]");
        }

        // The set twin through Extend.
        let mut set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
        for &(k, _) in &pre {
            set.insert(k);
        }
        set.extend(ext.iter().map(|&(k, _)| k));
        assert_eq!(
            set.keys(),
            model.keys().copied().collect::<Vec<_>>(),
            "case {case}: set keys"
        );
        set.check_invariants()
            .unwrap_or_else(|e| panic!("case {case} (set): {e}"));
    }
}
