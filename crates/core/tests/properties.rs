//! Property-based tests: the tree agrees with `BTreeMap`/`BTreeSet`
//! models on arbitrary operation sequences, and its structural
//! invariants hold after arbitrary histories.

use nmbst::{Ebr, Key, NmTreeMap, NmTreeSet, TagMode};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(i32),
    Remove(i32),
    Contains(i32),
}

fn op_strategy(key_range: i32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_range).prop_map(Op::Insert),
        (0..key_range).prop_map(Op::Remove),
        (0..key_range).prop_map(Op::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_btreeset_model(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        let mut model = BTreeSet::new();
        let mut set: NmTreeSet<i32, Ebr> = NmTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k) => prop_assert_eq!(set.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(set.remove(&k), model.remove(&k)),
                Op::Contains(k) => prop_assert_eq!(set.contains(&k), model.contains(&k)),
            }
        }
        prop_assert_eq!(set.keys(), model.iter().copied().collect::<Vec<_>>());
        let shape = set.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(shape.user_keys, model.len());
    }

    #[test]
    fn map_values_match_model(ops in prop::collection::vec(op_strategy(48), 1..300)) {
        let mut model: BTreeMap<i32, i64> = BTreeMap::new();
        let map: NmTreeMap<i32, i64, Ebr> = NmTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            let stamp = i as i64;
            match *op {
                Op::Insert(k) => {
                    // The tree rejects duplicates (no update), mirror that.
                    let inserted = map.insert(k, stamp);
                    let expected = !model.contains_key(&k);
                    if expected { model.insert(k, stamp); }
                    prop_assert_eq!(inserted, expected);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove_get(&k), model.remove(&k));
                }
                Op::Contains(k) => {
                    prop_assert_eq!(map.get(&k), model.get(&k).copied());
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(map.get(k), Some(*v));
        }
    }

    #[test]
    fn cas_only_variant_matches_model(ops in prop::collection::vec(op_strategy(32), 1..200)) {
        // §6: "our algorithm can be easily modified to use only CAS".
        let mut model = BTreeSet::new();
        let mut set: NmTreeSet<i32, Ebr> = NmTreeSet::with_tag_mode(TagMode::CasLoop);
        for op in &ops {
            match *op {
                Op::Insert(k) => prop_assert_eq!(set.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(set.remove(&k), model.remove(&k)),
                Op::Contains(k) => prop_assert_eq!(set.contains(&k), model.contains(&k)),
            }
        }
        set.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn key_ordering_total_and_sentinels_above(a in any::<i64>(), b in any::<i64>()) {
        let (ka, kb) = (Key::Fin(a), Key::Fin(b));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        prop_assert!(Key::Fin(a) < Key::Inf0);
        prop_assert!(Key::Fin(a) < Key::Inf1);
        prop_assert!(Key::Fin(a) < Key::Inf2);
    }

    #[test]
    fn interleaved_two_batches_concurrently(keys_a in prop::collection::btree_set(0u64..2048, 1..128),
                                            keys_b in prop::collection::btree_set(0u64..2048, 1..128)) {
        // Two threads insert their batches concurrently, then one removes
        // its batch. Final contents must be exactly keys_a \ keys_b plus
        // the intersection handled by whoever won — since removals of
        // shared keys race with nothing after the join, the final state
        // is keys_a \ keys_b exactly.
        let mut set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
        std::thread::scope(|s| {
            let set = &set;
            let a = keys_a.clone();
            let b = keys_b.clone();
            s.spawn(move || { for k in a { set.insert(k); } });
            s.spawn(move || { for k in b { set.insert(k); } });
        });
        for k in &keys_b {
            prop_assert!(set.remove(k));
        }
        let expected: Vec<u64> = keys_a.difference(&keys_b).copied().collect();
        prop_assert_eq!(set.keys(), expected);
        set.check_invariants().map_err(TestCaseError::fail)?;
    }
}
