//! Proves the PR 5 satellite claim that `range_for_each` allocates
//! nothing on the common (non-degenerate) path: the traversal stack now
//! lives in a fixed inline array on the caller's frame, with a heap
//! spill only for trees deeper than its 64 slots.
//!
//! Lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`, which must not taint the unit-test
//! binary's measurements.

use nmbst::NmTreeMap;
use nmbst_reclaim::Leaky;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn range_for_each_allocates_nothing_on_balanced_trees() {
    // Bulk-load for a guaranteed-balanced shape (depth ~13 ≪ the 64
    // inline slots) and `Leaky` so no reclamation bookkeeping allocates
    // behind the traversal's pin.
    let map: NmTreeMap<u64, u64, Leaky> = NmTreeMap::from_sorted_iter((0..1024).map(|k| (k, k)));

    // Warm-up: first pin of a thread may lazily allocate per-thread
    // state in some reclaimers; after this, steady state.
    let mut sink = 0u64;
    map.range_for_each(.., |_, v| sink = sink.wrapping_add(*v));

    let before = ALLOCS.load(Ordering::Relaxed);
    map.range_for_each(100..900, |k, v| {
        sink = sink.wrapping_add(k ^ v);
    });
    map.range_for_each(.., |_, _| {});
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "range_for_each must not heap-allocate on a balanced tree (sink={sink})"
    );
}

#[test]
fn range_for_each_spill_is_bounded_not_per_node() {
    // A ~300-deep degenerate spine forces the spill `Vec`, but the
    // allocation cost must be the Vec's geometric growth (a handful of
    // reallocs), not O(nodes).
    let map: NmTreeMap<u64, (), Leaky> = NmTreeMap::new();
    for k in 0..300 {
        map.insert(k, ());
    }
    let mut n = 0usize;
    map.range_for_each(.., |_, _| n += 1); // warm-up
    assert_eq!(n, 300);

    let before = ALLOCS.load(Ordering::Relaxed);
    map.range_for_each(.., |_, _| {});
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(
        after - before <= 16,
        "spill must grow geometrically, not per node: {} allocations",
        after - before
    );
}
