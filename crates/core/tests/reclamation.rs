//! Memory accounting under epoch-based reclamation: every node the tree
//! allocates is freed exactly once — no leaks, no double frees — and
//! values are dropped exactly once.

use nmbst::{Ebr, NmTreeMap, NmTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A value whose clones and drops are counted.
struct Tracked {
    live: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(live: &Arc<AtomicUsize>) -> Self {
        live.fetch_add(1, Ordering::Relaxed);
        Tracked {
            live: Arc::clone(live),
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

#[test]
fn values_dropped_exactly_once_sequential() {
    let live = Arc::new(AtomicUsize::new(0));
    let map: NmTreeMap<u64, Tracked, Ebr> = NmTreeMap::new();
    for k in 0..500 {
        assert!(map.insert(k, Tracked::new(&live)));
    }
    assert_eq!(live.load(Ordering::Relaxed), 500);
    // Duplicate inserts drop their values immediately.
    for k in 0..100 {
        assert!(!map.insert(k, Tracked::new(&live)));
    }
    assert_eq!(live.load(Ordering::Relaxed), 500);
    // Removals retire nodes; values die when the collector frees them.
    for k in 0..250 {
        assert!(map.remove(&k));
    }
    drop(map);
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "leaked or double-dropped values"
    );
}

#[test]
fn values_dropped_exactly_once_concurrent() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 800;
    let live = Arc::new(AtomicUsize::new(0));
    let map: NmTreeMap<u64, Tracked, Ebr> = NmTreeMap::new();
    std::thread::scope(|s| {
        let map = &map;
        let live = &live;
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let k = t * PER_THREAD + i;
                    map.insert(k, Tracked::new(live));
                    if i % 2 == 0 {
                        map.remove(&k);
                    }
                }
                map.flush();
            });
        }
    });
    let expected_live = (THREADS * PER_THREAD / 2) as usize;
    assert_eq!(map.count(), expected_live);
    drop(map);
    assert_eq!(live.load(Ordering::Relaxed), 0, "leak under concurrency");
}

#[test]
fn contended_same_keys_no_leak() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 2_000;
    const KEY_SPACE: u64 = 32;
    let live = Arc::new(AtomicUsize::new(0));
    let map: NmTreeMap<u64, Tracked, Ebr> = NmTreeMap::new();
    std::thread::scope(|s| {
        let map = &map;
        let live = &live;
        for t in 0..THREADS {
            s.spawn(move || {
                let mut x = t as u64 + 1;
                for _ in 0..ROUNDS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % KEY_SPACE;
                    if x & 1 == 0 {
                        map.insert(k, Tracked::new(live));
                    } else {
                        map.remove(&k);
                    }
                }
                map.flush();
            });
        }
    });
    let present = map.count();
    drop(map);
    assert_eq!(live.load(Ordering::Relaxed), 0);
    assert!(present <= KEY_SPACE as usize);
}

#[test]
fn flush_reclaims_without_dropping_tree() {
    // After heavy churn and a flush + quiescent period, the collector
    // should have freed the bulk of retired values even while the tree
    // is still alive.
    let live = Arc::new(AtomicUsize::new(0));
    let map: NmTreeMap<u64, Tracked, Ebr> = NmTreeMap::new();
    for round in 0..10 {
        for k in 0..200 {
            map.insert(k, Tracked::new(&live));
        }
        for k in 0..200 {
            map.remove(&k);
        }
        let _ = round;
    }
    map.flush();
    map.flush();
    map.flush();
    // 2000 values were created and all removed; everything should be
    // reclaimed by now (no thread is pinned).
    assert_eq!(live.load(Ordering::Relaxed), 0);
    drop(map);
    assert_eq!(live.load(Ordering::Relaxed), 0);
}

#[test]
fn handle_repin_keeps_reclamation_flowing() {
    // A MapHandle holds one epoch guard across many operations. Its
    // periodic re-pin must be a real unpin/pin — otherwise a long-lived
    // handle parks the global epoch forever and every node retired while
    // it exists becomes unreclaimable garbage.
    let live = Arc::new(AtomicUsize::new(0));
    let map: NmTreeMap<u64, Tracked, Ebr> = NmTreeMap::new();
    let mut h = map.handle().with_repin_every(8);
    for round in 0..64 {
        for k in 0..32 {
            h.insert(k, Tracked::new(&live));
        }
        for k in 0..32 {
            assert!(h.remove(&k), "round {round}: key {k} missing");
        }
        map.flush();
    }
    // 2048 values churned through a handle that was never dropped. With
    // the handle's guard re-pinned every 8 ops, the epoch kept advancing
    // and the collector kept up: the bulk of the garbage must be gone
    // while the handle still exists.
    let leaked = live.load(Ordering::Relaxed);
    assert!(
        leaked < 200,
        "{leaked} of 2048 removed values still live: the handle's \
         re-pin is not releasing its epoch"
    );
    drop(h);
    drop(map);
    assert_eq!(live.load(Ordering::Relaxed), 0);
}

#[test]
fn handle_without_repin_holds_its_epoch() {
    // Control for the test above: a handle that never re-pins must pin
    // its epoch, so garbage retired by *other* threads after the handle
    // pinned cannot all be freed while it is held. This is the hazard
    // the re-pin budget exists to bound.
    let live = Arc::new(AtomicUsize::new(0));
    let map: NmTreeMap<u64, Tracked, Ebr> = NmTreeMap::new();
    let mut h = map.handle().with_repin_every(u32::MAX);
    assert!(!h.contains(&0)); // force the pin now
    std::thread::scope(|s| {
        let map = &map;
        let live = &live;
        s.spawn(move || {
            for k in 0..512 {
                map.insert(k, Tracked::new(live));
                map.remove(&k);
            }
            map.flush();
            map.flush();
        });
    });
    let held = live.load(Ordering::Relaxed);
    assert!(
        held > 0,
        "an unpinned-never handle should have trapped some garbage"
    );
    // Releasing the handle's guard unblocks the epoch; the next flushes
    // reclaim everything.
    h.unpin();
    map.flush();
    map.flush();
    map.flush();
    drop(h);
    drop(map);
    assert_eq!(live.load(Ordering::Relaxed), 0);
}

#[test]
fn leaky_mode_reads_remain_valid_after_remove() {
    // With the paper's no-reclamation mode, removed nodes stay readable
    // (leaked); this is exactly the §4 benchmark configuration.
    use nmbst::Leaky;
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
    for k in 0..100 {
        set.insert(k);
    }
    for k in 0..100 {
        set.remove(&k);
    }
    assert_eq!(set.count(), 0);
}
