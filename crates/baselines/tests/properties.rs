//! Property-based differential tests: each baseline against `BTreeSet`
//! on arbitrary op sequences, plus baseline-specific invariants.

use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn ops(key_range: u64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1..key_range).prop_map(Op::Insert),
            (1..key_range).prop_map(Op::Remove),
            (1..key_range).prop_map(Op::Contains),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn efrb_matches_model(ops in ops(64)) {
        let mut model = BTreeSet::new();
        let mut t = EfrbTree::new();
        for op in ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(t.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(t.remove(&k), model.remove(&k)),
                Op::Contains(k) => prop_assert_eq!(t.contains(&k), model.contains(&k)),
            }
        }
        let n = t.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(n, model.len());
    }

    #[test]
    fn hj_matches_model(ops in ops(64)) {
        let mut model = BTreeSet::new();
        let mut t = HjTree::new();
        for op in ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(t.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(t.remove(&k), model.remove(&k)),
                Op::Contains(k) => prop_assert_eq!(t.contains(&k), model.contains(&k)),
            }
        }
        let n = t.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(n, model.len());
    }

    #[test]
    fn bcco_matches_model(ops in ops(64)) {
        let mut model = BTreeSet::new();
        let mut t = BccoTree::new();
        for op in ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(t.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(t.remove(&k), model.remove(&k)),
                Op::Contains(k) => prop_assert_eq!(t.contains(&k), model.contains(&k)),
            }
        }
        let n = t.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(n, model.len());
    }

    #[test]
    fn bcco_height_stays_logarithmic(keys in prop::collection::btree_set(1u64..100_000, 32..512)) {
        // Whatever the insertion set, the relaxed AVL must keep the
        // reachable height within the AVL bound (1.44 log2(n+2)).
        let mut t = BccoTree::new();
        let n = keys.len();
        for k in keys {
            t.insert(k);
        }
        t.check_invariants().map_err(TestCaseError::fail)?;
        let bound = (1.45 * ((n + 2) as f64).log2()).ceil() as usize + 1;
        // Probe depth indirectly: a contains() walk must terminate well
        // within the bound — validated by check_invariants' height audit,
        // so here we simply sanity-check the bound constant is positive.
        prop_assert!(bound > 0);
    }

    #[test]
    fn traversals_sorted_for_all_baselines(keys in prop::collection::btree_set(1u64..10_000, 1..200)) {
        let expected: Vec<u64> = keys.iter().copied().collect();

        let t = EfrbTree::new();
        for &k in &keys { t.insert(k); }
        let mut got = Vec::new();
        t.for_each(|k| got.push(k));
        prop_assert_eq!(&got, &expected);

        let t = HjTree::new();
        for &k in &keys { t.insert(k); }
        let mut got = Vec::new();
        t.for_each(|k| got.push(k));
        prop_assert_eq!(&got, &expected);

        let t = BccoTree::new();
        for &k in &keys { t.insert(k); }
        let mut got = Vec::new();
        t.for_each(|k| got.push(k));
        prop_assert_eq!(&got, &expected);
    }
}
