//! Property-style differential tests: each baseline against `BTreeSet`
//! on pseudo-random op sequences, plus baseline-specific invariants.
//!
//! Deliberately dependency-free: cases are generated from a fixed-seed
//! SplitMix64 stream, so every run tests the identical corpus and a
//! failure report ("seed case N") is immediately reproducible.

use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree};
use std::collections::BTreeSet;

/// SplitMix64 (Steele et al.): tiny, full-period, well-mixed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn gen_ops(rng: &mut Rng, key_range: u64, max_len: u64) -> Vec<Op> {
    let len = 1 + rng.below(max_len);
    (0..len)
        .map(|_| {
            let k = 1 + rng.below(key_range - 1);
            match rng.below(3) {
                0 => Op::Insert(k),
                1 => Op::Remove(k),
                _ => Op::Contains(k),
            }
        })
        .collect()
}

fn gen_key_set(rng: &mut Rng, key_range: u64, min: u64, max: u64) -> BTreeSet<u64> {
    let target = min + rng.below(max - min);
    let mut keys = BTreeSet::new();
    while (keys.len() as u64) < target {
        keys.insert(1 + rng.below(key_range - 1));
    }
    keys
}

/// Runs `ops` against both `tree` (via the closures) and the model,
/// panicking with the case index on the first divergence.
fn check_against_model(
    case: usize,
    ops: &[Op],
    mut insert: impl FnMut(u64) -> bool,
    mut remove: impl FnMut(u64) -> bool,
    mut contains: impl FnMut(u64) -> bool,
) -> BTreeSet<u64> {
    let mut model = BTreeSet::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k) => assert_eq!(
                insert(k),
                model.insert(k),
                "case {case}, op {i}: insert({k}) diverged (ops: {ops:?})"
            ),
            Op::Remove(k) => assert_eq!(
                remove(k),
                model.remove(&k),
                "case {case}, op {i}: remove({k}) diverged (ops: {ops:?})"
            ),
            Op::Contains(k) => assert_eq!(
                contains(k),
                model.contains(&k),
                "case {case}, op {i}: contains({k}) diverged (ops: {ops:?})"
            ),
        }
    }
    model
}

const CASES: usize = 96;

#[test]
fn efrb_matches_model() {
    let mut rng = Rng(0xEF4B_0001);
    for case in 0..CASES {
        let ops = gen_ops(&mut rng, 64, 300);
        let mut t = EfrbTree::new();
        let model = check_against_model(
            case,
            &ops,
            |k| t.insert(k),
            |k| t.remove(&k),
            |k| t.contains(&k),
        );
        let n = t
            .check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(n, model.len(), "case {case}: size diverged");
    }
}

#[test]
fn hj_matches_model() {
    let mut rng = Rng(0x440A_0002);
    for case in 0..CASES {
        let ops = gen_ops(&mut rng, 64, 300);
        let mut t = HjTree::new();
        let model = check_against_model(
            case,
            &ops,
            |k| t.insert(k),
            |k| t.remove(&k),
            |k| t.contains(&k),
        );
        let n = t
            .check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(n, model.len(), "case {case}: size diverged");
    }
}

#[test]
fn bcco_matches_model() {
    let mut rng = Rng(0xBCC0_0003);
    for case in 0..CASES {
        let ops = gen_ops(&mut rng, 64, 300);
        let mut t = BccoTree::new();
        let model = check_against_model(
            case,
            &ops,
            |k| t.insert(k),
            |k| t.remove(&k),
            |k| t.contains(&k),
        );
        let n = t
            .check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(n, model.len(), "case {case}: size diverged");
    }
}

/// Regression distilled by the previous property-test tooling (its
/// shrinker minimized a model divergence to this exact sequence): a
/// run of inserts building a specific shape, then removing an internal
/// routing key. Kept as an explicit case for all three baselines.
#[test]
fn regression_shrunk_insert_run_then_remove_19() {
    use Op::{Insert, Remove};
    let ops = [
        Insert(16),
        Insert(3),
        Insert(17),
        Insert(4),
        Insert(33),
        Insert(34),
        Insert(25),
        Insert(24),
        Insert(18),
        Insert(19),
        Insert(5),
        Insert(26),
        Insert(21),
        Insert(1),
        Insert(6),
        Insert(7),
        Insert(35),
        Insert(8),
        Insert(36),
        Insert(37),
        Remove(19),
    ];

    let mut t = EfrbTree::new();
    let model = check_against_model(
        0,
        &ops,
        |k| t.insert(k),
        |k| t.remove(&k),
        |k| t.contains(&k),
    );
    assert_eq!(t.check_invariants().unwrap(), model.len());

    let mut t = HjTree::new();
    let model = check_against_model(
        0,
        &ops,
        |k| t.insert(k),
        |k| t.remove(&k),
        |k| t.contains(&k),
    );
    assert_eq!(t.check_invariants().unwrap(), model.len());

    let mut t = BccoTree::new();
    let model = check_against_model(
        0,
        &ops,
        |k| t.insert(k),
        |k| t.remove(&k),
        |k| t.contains(&k),
    );
    assert_eq!(t.check_invariants().unwrap(), model.len());
}

#[test]
fn bcco_height_stays_logarithmic() {
    let mut rng = Rng(0xBCC0_4E16);
    for case in 0..24 {
        let keys = gen_key_set(&mut rng, 100_000, 32, 512);
        // Whatever the insertion set, the relaxed AVL must keep the
        // reachable height within the AVL bound (1.44 log2(n+2)) —
        // audited inside check_invariants.
        let mut t = BccoTree::new();
        for &k in &keys {
            t.insert(k);
        }
        t.check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

#[test]
fn traversals_sorted_for_all_baselines() {
    let mut rng = Rng(0x5027_ED01);
    for _ in 0..24 {
        let keys = gen_key_set(&mut rng, 10_000, 1, 200);
        let expected: Vec<u64> = keys.iter().copied().collect();

        let t = EfrbTree::new();
        for &k in &keys {
            t.insert(k);
        }
        let mut got = Vec::new();
        t.for_each(|k| got.push(k));
        assert_eq!(got, expected);

        let t = HjTree::new();
        for &k in &keys {
            t.insert(k);
        }
        let mut got = Vec::new();
        t.for_each(|k| got.push(k));
        assert_eq!(got, expected);

        let t = BccoTree::new();
        for &k in &keys {
            t.insert(k);
        }
        let mut got = Vec::new();
        t.for_each(|k| got.push(k));
        assert_eq!(got, expected);
    }
}
