//! Comparator implementations from the paper's evaluation (§4).
//!
//! The paper benchmarks NM-BST against three concurrent BSTs; all three
//! are implemented here from their original papers, plus a trivially
//! correct coarse-locked reference:
//!
//! * [`efrb::EfrbTree`] — Ellen, Fataourou, Ruppert & van Breugel,
//!   *Non-Blocking Binary Search Trees* (PODC 2010). Lock-free
//!   **external** BST that coordinates by flagging/marking *nodes* with
//!   pointers to Info records.
//! * [`hj::HjTree`] — Howley & Jones, *A Non-Blocking Internal Binary
//!   Search Tree* (SPAA 2012). Lock-free **internal** BST using
//!   operation records (child-CAS and relocation), where deleting an
//!   interior key relocates its successor's key.
//! * [`bcco::BccoTree`] — Bronson, Casper, Chafi & Olukotun, *A
//!   Practical Concurrent Binary Search Tree* (PPoPP 2010). Lock-based
//!   partially external relaxed-balance AVL with optimistic
//!   hand-over-hand version validation.
//! * [`locked::LockedBTreeSet`] — `std::collections::BTreeSet` behind a
//!   single mutex; the sanity baseline every concurrent structure must
//!   beat past one thread.
//!
//! # Fidelity notes
//!
//! * Keys are `u64` (non-zero for [`hj::HjTree`]), matching the integer
//!   keys of the paper's C implementations. HJ relocation swaps keys
//!   with a CAS, which fundamentally requires word-sized keys.
//! * Like the paper's evaluation harness ("no memory reclamation is
//!   performed in any of the implementations"), the lock-free baselines
//!   **leak removed nodes and operation records** for their lifetime;
//!   `Drop` frees only what is still reachable. The production-grade
//!   reclaiming tree is the point of the `nmbst` crate, not of these
//!   comparators.
//! * With `feature = "instrument"`, per-thread counters record the
//!   allocations and atomic instructions per operation — the quantities
//!   of Table 1.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bcco;
pub mod efrb;
pub mod hj;
pub mod locked;
pub mod stats;
