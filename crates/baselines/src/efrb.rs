//! EFRB-BST: Ellen, Fataourou, Ruppert & van Breugel, *Non-Blocking
//! Binary Search Trees* (PODC 2010).
//!
//! A lock-free **external** BST, like NM-BST — but coordination happens
//! at *node* granularity: each internal node carries an `update` word
//! packing a state (`CLEAN`, `IFLAG`, `DFLAG`, `MARK`) with a pointer to
//! an Info record describing the operation that owns the node.
//!
//! Cost profile (Table 1): an uncontended insert allocates **4** objects
//! (new leaf, copy of the sibling leaf, new internal, IInfo record) and
//! executes **3** CAS (iflag, ichild, iunflag); a delete allocates **1**
//! object (DInfo) and executes **4** CAS (dflag, mark, dchild, dunflag).
//! Contrast with NM-BST's 2/1 and 0/3 — this gap, and the wider
//! conflict window (a delete "locks" both parent and grandparent), are
//! what Figure 4 measures.
//!
//! Keys are `u64` below [`EfrbTree::MAX_KEY`]; two values are reserved
//! for the sentinels. Removed nodes and Info records are leaked, per the
//! paper's evaluation setup.

use crate::stats;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

const CLEAN: usize = 0;
const IFLAG: usize = 1;
const DFLAG: usize = 2;
const MARK: usize = 3;
const STATE_MASK: usize = 3;

const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

#[inline]
fn pack(info: usize, state: usize) -> usize {
    debug_assert_eq!(info & STATE_MASK, 0);
    info | state
}

#[inline]
fn state_of(update: usize) -> usize {
    update & STATE_MASK
}

#[inline]
fn info_of(update: usize) -> usize {
    update & !STATE_MASK
}

#[repr(align(8))]
struct Node {
    key: u64,
    update: AtomicUsize,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

impl Node {
    fn leaf(key: u64) -> *mut Node {
        stats::record_alloc();
        Box::into_raw(Box::new(Node {
            key,
            update: AtomicUsize::new(CLEAN),
            left: AtomicPtr::new(ptr::null_mut()),
            right: AtomicPtr::new(ptr::null_mut()),
        }))
    }

    fn internal(key: u64, left: *mut Node, right: *mut Node) -> *mut Node {
        stats::record_alloc();
        Box::into_raw(Box::new(Node {
            key,
            update: AtomicUsize::new(CLEAN),
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
        }))
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.left.load(Ordering::Acquire).is_null()
    }
}

/// Insert descriptor: "replace leaf `l` under `p` with `new_internal`".
#[repr(align(8))]
struct IInfo {
    p: *mut Node,
    l: *mut Node,
    new_internal: *mut Node,
}

/// Delete descriptor: "unlink `p` and `l` from under `gp`; `p` was
/// observed with update word `pupdate`".
#[repr(align(8))]
struct DInfo {
    gp: *mut Node,
    p: *mut Node,
    l: *mut Node,
    pupdate: usize,
}

fn alloc_iinfo(p: *mut Node, l: *mut Node, new_internal: *mut Node) -> usize {
    stats::record_alloc();
    Box::into_raw(Box::new(IInfo { p, l, new_internal })) as usize
}

fn alloc_dinfo(gp: *mut Node, p: *mut Node, l: *mut Node, pupdate: usize) -> usize {
    stats::record_alloc();
    Box::into_raw(Box::new(DInfo { gp, p, l, pupdate })) as usize
}

/// The result of a search: the last three nodes on the access path and
/// the update words read *before* following the respective child links.
struct SearchResult {
    gp: *mut Node,
    p: *mut Node,
    l: *mut Node,
    pupdate: usize,
    gpupdate: usize,
}

/// Ellen et al.'s lock-free external BST over `u64` keys.
///
/// # Examples
///
/// ```
/// use nmbst_baselines::efrb::EfrbTree;
///
/// let t = EfrbTree::new();
/// assert!(t.insert(5));
/// assert!(!t.insert(5));
/// assert!(t.contains(&5));
/// assert!(t.remove(&5));
/// assert!(!t.contains(&5));
/// ```
pub struct EfrbTree {
    root: *mut Node,
}

// SAFETY: shared mutation is mediated by the algorithm's CAS protocol.
unsafe impl Send for EfrbTree {}
unsafe impl Sync for EfrbTree {}

impl EfrbTree {
    /// Largest key storable (two values reserved for sentinels).
    pub const MAX_KEY: u64 = INF1 - 1;

    /// Creates an empty tree: `root(∞₂)` over `leaf(∞₁)`, `leaf(∞₂)`.
    pub fn new() -> Self {
        let l1 = Node::leaf(INF1);
        let l2 = Node::leaf(INF2);
        EfrbTree {
            root: Node::internal(INF2, l1, l2),
        }
    }

    fn search(&self, key: u64) -> SearchResult {
        let mut gp = ptr::null_mut();
        let mut p = ptr::null_mut();
        let mut gpupdate = CLEAN;
        let mut pupdate = CLEAN;
        let mut l = self.root;
        // SAFETY: nodes are never freed while the tree lives (removed
        // nodes are leaked), so every pointer read from a live edge
        // remains dereferenceable.
        unsafe {
            while !(*l).is_leaf() {
                gp = p;
                p = l;
                gpupdate = pupdate;
                // Read the update word *before* the child pointer: the
                // proof of lock-freedom relies on this order.
                pupdate = (*p).update.load(Ordering::Acquire);
                l = if key < (*p).key {
                    (*p).left.load(Ordering::Acquire)
                } else {
                    (*p).right.load(Ordering::Acquire)
                };
            }
        }
        SearchResult {
            gp,
            p,
            l,
            pupdate,
            gpupdate,
        }
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &u64) -> bool {
        debug_assert!(*key <= Self::MAX_KEY);
        let s = self.search(*key);
        // SAFETY: leaked-node regime (see `search`).
        unsafe { (*s.l).key == *key }
    }

    /// Adds `key`; `true` iff it was absent.
    pub fn insert(&self, key: u64) -> bool {
        assert!(key <= Self::MAX_KEY, "key collides with sentinel range");
        loop {
            let s = self.search(key);
            // SAFETY: leaked-node regime.
            let (l_key, p) = unsafe { ((*s.l).key, s.p) };
            if l_key == key {
                return false;
            }
            if state_of(s.pupdate) != CLEAN {
                self.help(s.pupdate);
                continue;
            }
            // Four allocations: new leaf, sibling copy, internal, IInfo.
            let new_leaf = Node::leaf(key);
            let sibling_copy = Node::leaf(l_key);
            let new_internal = if key < l_key {
                Node::internal(l_key, new_leaf, sibling_copy)
            } else {
                Node::internal(key, sibling_copy, new_leaf)
            };
            let op = alloc_iinfo(p, s.l, new_internal);
            stats::record_cas();
            // iflag
            // SAFETY: p is a live internal node.
            match unsafe { &(*p).update }.compare_exchange(
                s.pupdate,
                pack(op, IFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.help_insert(op);
                    return true;
                }
                Err(current) => {
                    // Scratch nodes are leaked (paper regime); help the
                    // interfering operation and retry.
                    self.help(current);
                }
            }
        }
    }

    /// Removes `key`; `true` iff it was present.
    pub fn remove(&self, key: &u64) -> bool {
        let key = *key;
        debug_assert!(key <= Self::MAX_KEY);
        loop {
            let s = self.search(key);
            // SAFETY: leaked-node regime.
            if unsafe { (*s.l).key } != key {
                return false;
            }
            if state_of(s.gpupdate) != CLEAN {
                self.help(s.gpupdate);
                continue;
            }
            if state_of(s.pupdate) != CLEAN {
                self.help(s.pupdate);
                continue;
            }
            // One allocation: the DInfo record.
            let op = alloc_dinfo(s.gp, s.p, s.l, s.pupdate);
            stats::record_cas();
            // dflag
            // SAFETY: a finite-key leaf sits at depth ≥ 2, so gp is a
            // live internal node.
            match unsafe { &(*s.gp).update }.compare_exchange(
                s.gpupdate,
                pack(op, DFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if self.help_delete(op) {
                        return true;
                    }
                }
                Err(current) => self.help(current),
            }
        }
    }

    /// Dispatches help to whatever operation owns `update`.
    fn help(&self, update: usize) {
        match state_of(update) {
            IFLAG => self.help_insert(info_of(update)),
            MARK => self.help_marked(info_of(update)),
            DFLAG => {
                self.help_delete(info_of(update));
            }
            _ => {}
        }
    }

    fn help_insert(&self, op: usize) {
        // SAFETY: Info records are leaked, hence always dereferenceable;
        // `op` came from an IFLAG word, so it is an IInfo.
        let info = unsafe { &*(op as *const IInfo) };
        self.cas_child(info.p, info.l, info.new_internal);
        stats::record_cas();
        // iunflag
        // SAFETY: leaked-node regime.
        let _ = unsafe { &(*info.p).update }.compare_exchange(
            pack(op, IFLAG),
            pack(op, CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The second phase of a delete: mark the parent, then physically
    /// splice. Returns `false` if the mark failed and the delete must
    /// back off and retry from a fresh search.
    fn help_delete(&self, op: usize) -> bool {
        // SAFETY: `op` came from a DFLAG/MARK word → DInfo; leaked.
        let info = unsafe { &*(op as *const DInfo) };
        stats::record_cas();
        // mark
        // SAFETY: leaked-node regime.
        let res = unsafe { &(*info.p).update }.compare_exchange(
            info.pupdate,
            pack(op, MARK),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        match res {
            Ok(_) => {
                self.help_marked(op);
                true
            }
            Err(current) if current == pack(op, MARK) => {
                // Another helper marked it for this same operation.
                self.help_marked(op);
                true
            }
            Err(current) => {
                // The parent is owned by someone else: help them, then
                // undo our grandparent flag (backtrack CAS).
                self.help(current);
                stats::record_cas();
                // SAFETY: leaked-node regime.
                let _ = unsafe { &(*info.gp).update }.compare_exchange(
                    pack(op, DFLAG),
                    pack(op, CLEAN),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                false
            }
        }
    }

    /// Physically splices out `p` and `l`, hoisting the sibling.
    fn help_marked(&self, op: usize) {
        // SAFETY: see `help_delete`.
        let info = unsafe { &*(op as *const DInfo) };
        // SAFETY: leaked-node regime.
        let other = unsafe {
            if (*info.p).right.load(Ordering::Acquire) == info.l {
                (*info.p).left.load(Ordering::Acquire)
            } else {
                (*info.p).right.load(Ordering::Acquire)
            }
        };
        self.cas_child(info.gp, info.p, other);
        stats::record_cas();
        // dunflag
        // SAFETY: leaked-node regime.
        let _ = unsafe { &(*info.gp).update }.compare_exchange(
            pack(op, DFLAG),
            pack(op, CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The physical child swing (ichild / dchild).
    fn cas_child(&self, parent: *mut Node, old: *mut Node, new: *mut Node) {
        stats::record_cas();
        // SAFETY: leaked-node regime; `new` subtree keys lie strictly on
        // one side of `parent.key`, so `new.key` picks the correct side.
        unsafe {
            let field = if (*new).key < (*parent).key {
                &(*parent).left
            } else {
                &(*parent).right
            };
            let _ = field.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// Visits every key in ascending order (weakly consistent).
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            // SAFETY: leaked-node regime.
            unsafe {
                if (*n).is_leaf() {
                    if (*n).key < INF1 {
                        f((*n).key);
                    }
                } else {
                    stack.push((*n).right.load(Ordering::Acquire));
                    stack.push((*n).left.load(Ordering::Acquire));
                }
            }
        }
    }

    /// Number of keys via weakly consistent traversal.
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.for_each(|_| n += 1);
        n
    }

    /// Validates external-BST shape and ordering (exclusive access).
    pub fn check_invariants(&mut self) -> Result<usize, String> {
        let mut user = 0;
        let mut stack: Vec<(*mut Node, u64, u64)> = vec![(self.root, 0, u64::MAX)];
        while let Some((n, low, high)) = stack.pop() {
            // SAFETY: exclusive access; reachable nodes are live.
            unsafe {
                let k = (*n).key;
                if !(low..=high).contains(&k) {
                    return Err(format!("key {k} outside ({low}, {high})"));
                }
                let l = (*n).left.load(Ordering::Relaxed);
                let r = (*n).right.load(Ordering::Relaxed);
                match (l.is_null(), r.is_null()) {
                    (true, true) => {
                        if k < INF1 {
                            user += 1;
                        }
                    }
                    (false, false) => {
                        if k == 0 {
                            return Err("internal key 0 cannot separate".into());
                        }
                        stack.push((l, low, k - 1));
                        stack.push((r, k, high));
                    }
                    _ => return Err("non-external node (exactly one child)".into()),
                }
            }
        }
        Ok(user)
    }
}

impl Default for EfrbTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for EfrbTree {
    fn drop(&mut self) {
        // Frees the *reachable* tree. Unlinked nodes and Info records
        // are intentionally leaked (paper's no-reclamation regime).
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: exclusive access; reachable nodes are live boxes.
            let node = unsafe { Box::from_raw(n) };
            stack.push(node.left.load(Ordering::Relaxed));
            stack.push(node.right.load(Ordering::Relaxed));
        }
    }
}

impl std::fmt::Debug for EfrbTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EfrbTree").finish_non_exhaustive()
    }
}

#[cfg(test)]
impl EfrbTree {
    /// Test hook: performs only the grandparent-flag (dflag) step of a
    /// delete and stops — a deleter stalled mid-protocol. Returns `true`
    /// if the flag was planted.
    fn stall_delete_after_dflag(&self, key: u64) -> bool {
        loop {
            let s = self.search(key);
            // SAFETY: leaked-node regime.
            if unsafe { (*s.l).key } != key {
                return false;
            }
            if state_of(s.gpupdate) != CLEAN || state_of(s.pupdate) != CLEAN {
                return false; // someone else owns the region
            }
            let op = alloc_dinfo(s.gp, s.p, s.l, s.pupdate);
            // SAFETY: leaked-node regime.
            if unsafe { &(*s.gp).update }
                .compare_exchange(
                    s.gpupdate,
                    pack(op, DFLAG),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_granularity_forces_helping_figure5() {
        // §5 / Figure 5 mirror of nmbst's
        // `edge_granularity_gives_independent_progress_figure5`: EFRB
        // coordinates at *node* granularity, so a delete stalled after
        // flagging the grandparent blocks any other modify operation in
        // that neighbourhood until it is helped **to completion** —
        // deleting the tree sibling cannot proceed independently.
        let t = EfrbTree::new();
        assert!(t.insert(10));
        assert!(t.insert(20));
        assert!(t.stall_delete_after_dflag(10));
        assert!(t.contains(&10), "stalled delete not yet linearized");
        // The sibling delete must first finish the stalled delete of 10
        // (its grandparent owns the region), then remove 20.
        assert!(t.remove(&20));
        assert!(
            !t.contains(&10),
            "EFRB forced the stalled delete to completion — the paper's \
             node-vs-edge granularity contrast"
        );
        assert!(!t.contains(&20));
    }

    #[test]
    fn empty_tree() {
        let t = EfrbTree::new();
        assert!(!t.contains(&5));
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut t = EfrbTree::new();
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert!(t.insert(k));
        }
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert!(t.contains(&k));
        }
        assert!(!t.insert(50));
        assert!(t.remove(&50));
        assert!(!t.remove(&50));
        assert!(!t.contains(&50));
        assert_eq!(t.check_invariants().unwrap(), 6);
    }

    #[test]
    fn ascending_and_descending_sequences() {
        let mut t = EfrbTree::new();
        for k in 1..200u64 {
            assert!(t.insert(k));
        }
        for k in (1..200u64).rev() {
            assert!(t.remove(&k));
        }
        assert_eq!(t.check_invariants().unwrap(), 0);
    }

    #[test]
    fn ordered_traversal() {
        let t = EfrbTree::new();
        for k in [9u64, 3, 7, 1, 5] {
            t.insert(k);
        }
        let mut seen = Vec::new();
        t.for_each(|k| seen.push(k));
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn sequential_model_check() {
        let mut model = std::collections::BTreeSet::new();
        let mut t = EfrbTree::new();
        let mut x = 88172645463325252u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 128;
            match x % 3 {
                0 => assert_eq!(t.insert(k), model.insert(k)),
                1 => assert_eq!(t.remove(&k), model.remove(&k)),
                _ => assert_eq!(t.contains(&k), model.contains(&k)),
            }
        }
        assert_eq!(t.check_invariants().unwrap(), model.len());
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::{AtomicUsize, Ordering as O};
        const THREADS: usize = 8;
        const OPS: usize = 8_000;
        const SPACE: u64 = 64;
        let mut t = EfrbTree::new();
        let ins: Vec<AtomicUsize> = (0..SPACE).map(|_| AtomicUsize::new(0)).collect();
        let del: Vec<AtomicUsize> = (0..SPACE).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            let t = &t;
            let ins = &ins;
            let del = &del;
            for tid in 0..THREADS {
                s.spawn(move || {
                    let mut x = 0x243F6A8885A308D3u64 ^ (tid as u64);
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % SPACE;
                        if x & 2 == 0 {
                            if t.insert(k) {
                                ins[k as usize].fetch_add(1, O::Relaxed);
                            }
                        } else if t.remove(&k) {
                            del[k as usize].fetch_add(1, O::Relaxed);
                        }
                    }
                });
            }
        });
        let total = t.check_invariants().unwrap();
        let mut expected = 0;
        for k in 0..SPACE {
            let i = ins[k as usize].load(O::Relaxed);
            let d = del[k as usize].load(O::Relaxed);
            assert!(i == d || i == d + 1, "key {k}: {i} ins vs {d} del");
            let present = i == d + 1;
            assert_eq!(t.contains(&k), present);
            expected += usize::from(present);
        }
        assert_eq!(total, expected);
    }
}
