//! HJ-BST: Howley & Jones, *A Non-Blocking Internal Binary Search Tree*
//! (SPAA 2012).
//!
//! An **internal** BST: every node carries a real key, so search paths
//! are shorter than in external trees — the reason HJ wins the paper's
//! read-dominated, large-key-space panels of Figure 4. The price is paid
//! on deletion: removing a key whose node has two children *relocates*
//! the successor's key into it with a multi-step, helped operation
//! record protocol (`RelocateOp`), and physically unlinking any node
//! takes a `ChildCASOp` through the parent.
//!
//! Each node's `op` word packs an operation-record pointer with a state
//! (`NONE`, `MARK`, `CHILDCAS`, `RELOCATE`). Child words pack a pointer
//! with a *null bit*: a logically null child that still remembers the
//! old address, so that stale CASes fail.
//!
//! Keys are relocated with a CAS on the key word itself, which is why
//! this baseline (like the authors' C implementation) requires
//! word-sized keys: `u64`, strictly positive (0 is the root sentinel).
//! Removed nodes and operation records are leaked (paper regime).

use crate::stats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const NONE: usize = 0;
const MARK: usize = 1;
const CHILDCAS: usize = 2;
const RELOCATE: usize = 3;
const STATE_MASK: usize = 3;

const ONGOING: usize = 0;
const SUCCESSFUL: usize = 1;
const FAILED: usize = 2;

const NULL_BIT: usize = 1;

#[inline]
fn flag(op: usize, state: usize) -> usize {
    (op & !STATE_MASK) | state
}

#[inline]
fn get_state(op: usize) -> usize {
    op & STATE_MASK
}

#[inline]
fn unflag(op: usize) -> usize {
    op & !STATE_MASK
}

#[inline]
fn is_null(child: usize) -> bool {
    child == 0 || child & NULL_BIT != 0
}

#[inline]
fn set_null(child: usize) -> usize {
    child | NULL_BIT
}

#[repr(align(8))]
struct Node {
    key: AtomicU64,
    op: AtomicUsize,
    left: AtomicUsize,
    right: AtomicUsize,
}

impl Node {
    fn alloc(key: u64) -> *mut Node {
        stats::record_alloc();
        Box::into_raw(Box::new(Node {
            key: AtomicU64::new(key),
            op: AtomicUsize::new(NONE),
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
        }))
    }
}

/// "Swing `dest`'s `is_left` child from `expected` to `update`."
#[repr(align(8))]
struct ChildCasOp {
    is_left: bool,
    expected: usize,
    update: usize,
}

/// "Move `replace_key` into `dest` (whose op word was `dest_op`),
/// removing `remove_key`."
#[repr(align(8))]
struct RelocateOp {
    state: AtomicUsize,
    dest: *mut Node,
    dest_op: usize,
    remove_key: u64,
    replace_key: u64,
}

fn alloc_child_cas(is_left: bool, expected: usize, update: usize) -> usize {
    stats::record_alloc();
    Box::into_raw(Box::new(ChildCasOp {
        is_left,
        expected,
        update,
    })) as usize
}

fn alloc_relocate(dest: *mut Node, dest_op: usize, remove_key: u64, replace_key: u64) -> usize {
    stats::record_alloc();
    Box::into_raw(Box::new(RelocateOp {
        state: AtomicUsize::new(ONGOING),
        dest,
        dest_op,
        remove_key,
        replace_key,
    })) as usize
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FindResult {
    Found,
    NotFoundL,
    NotFoundR,
    Abort,
}

struct FindState {
    pred: *mut Node,
    pred_op: usize,
    curr: *mut Node,
    curr_op: usize,
}

/// Howley & Jones's lock-free internal BST over positive `u64` keys.
///
/// # Examples
///
/// ```
/// use nmbst_baselines::hj::HjTree;
///
/// let t = HjTree::new();
/// assert!(t.insert(5));
/// assert!(t.contains(&5));
/// assert!(t.remove(&5));
/// assert!(!t.contains(&5));
/// ```
pub struct HjTree {
    root: *mut Node,
}

// SAFETY: shared mutation is mediated by the algorithm's CAS protocol.
unsafe impl Send for HjTree {}
unsafe impl Sync for HjTree {}

impl HjTree {
    /// Creates an empty tree (root sentinel with key 0; real content
    /// hangs off its right child).
    pub fn new() -> Self {
        HjTree {
            root: Node::alloc(0),
        }
    }

    /// The find routine (HJ Figure 4): descends from `aux_root`, helping
    /// any flagged operation it encounters, and validates that the last
    /// right-turn node's op word is unchanged (the guard against keys
    /// that relocated past us).
    fn find(&self, key: u64, aux_root: *mut Node) -> (FindResult, FindState) {
        // SAFETY throughout: removed nodes/records are leaked, so every
        // pointer read from a live word stays dereferenceable.
        unsafe {
            'retry: loop {
                let mut result = FindResult::NotFoundR;
                let mut curr = aux_root;
                let mut curr_op = (*curr).op.load(Ordering::Acquire);
                if get_state(curr_op) != NONE {
                    if aux_root == self.root {
                        // Only child-CAS ops can own the root.
                        self.help_child_cas(unflag(curr_op), curr);
                        continue 'retry;
                    }
                    return (
                        FindResult::Abort,
                        FindState {
                            pred: std::ptr::null_mut(),
                            pred_op: 0,
                            curr,
                            curr_op,
                        },
                    );
                }
                let mut pred = std::ptr::null_mut();
                let mut pred_op = 0;
                let mut last_right = curr;
                let mut last_right_op = curr_op;
                let mut next = (*curr).right.load(Ordering::Acquire);
                while !is_null(next) {
                    pred = curr;
                    pred_op = curr_op;
                    curr = next as *mut Node;
                    curr_op = (*curr).op.load(Ordering::Acquire);
                    if get_state(curr_op) != NONE {
                        self.help(pred, pred_op, curr, curr_op);
                        continue 'retry;
                    }
                    let curr_key = (*curr).key.load(Ordering::Acquire);
                    match key.cmp(&curr_key) {
                        std::cmp::Ordering::Less => {
                            result = FindResult::NotFoundL;
                            next = (*curr).left.load(Ordering::Acquire);
                        }
                        std::cmp::Ordering::Greater => {
                            result = FindResult::NotFoundR;
                            next = (*curr).right.load(Ordering::Acquire);
                            last_right = curr;
                            last_right_op = curr_op;
                        }
                        std::cmp::Ordering::Equal => {
                            result = FindResult::Found;
                            break;
                        }
                    }
                }
                if result != FindResult::Found
                    && last_right_op != (*last_right).op.load(Ordering::Acquire)
                {
                    continue 'retry;
                }
                if (*curr).op.load(Ordering::Acquire) != curr_op {
                    continue 'retry;
                }
                return (
                    result,
                    FindState {
                        pred,
                        pred_op,
                        curr,
                        curr_op,
                    },
                );
            }
        }
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &u64) -> bool {
        debug_assert!(*key > 0, "key 0 is the root sentinel");
        matches!(self.find(*key, self.root).0, FindResult::Found)
    }

    /// Adds `key` (must be > 0); `true` iff it was absent.
    pub fn insert(&self, key: u64) -> bool {
        assert!(key > 0, "key 0 is the root sentinel");
        loop {
            let (result, st) = self.find(key, self.root);
            if result == FindResult::Found {
                return false;
            }
            let new_node = Node::alloc(key) as usize;
            let is_left = result == FindResult::NotFoundL;
            // SAFETY: leaked-node regime.
            let old = unsafe {
                if is_left {
                    (*st.curr).left.load(Ordering::Acquire)
                } else {
                    (*st.curr).right.load(Ordering::Acquire)
                }
            };
            let cas_op = alloc_child_cas(is_left, old, new_node);
            stats::record_cas();
            // SAFETY: leaked-node regime.
            let won = unsafe { &(*st.curr).op }
                .compare_exchange(
                    st.curr_op,
                    flag(cas_op, CHILDCAS),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok();
            if won {
                self.help_child_cas(cas_op, st.curr);
                return true;
            }
            // Lost the op word; scratch node and record are leaked.
        }
    }

    /// Removes `key`; `true` iff it was present. Linearizes at the mark
    /// (≤ 1 child) or at the successful relocation (2 children).
    pub fn remove(&self, key: &u64) -> bool {
        let key = *key;
        debug_assert!(key > 0);
        loop {
            let (result, st) = self.find(key, self.root);
            if result != FindResult::Found {
                return false;
            }
            // SAFETY: leaked-node regime.
            let (left, right) = unsafe {
                (
                    (*st.curr).left.load(Ordering::Acquire),
                    (*st.curr).right.load(Ordering::Acquire),
                )
            };
            if is_null(left) || is_null(right) {
                // At most one child: mark, then splice through the parent.
                stats::record_cas();
                // SAFETY: leaked-node regime.
                let marked = unsafe { &(*st.curr).op }
                    .compare_exchange(
                        st.curr_op,
                        flag(st.curr_op, MARK),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                if marked {
                    self.help_marked(st.pred, st.pred_op, st.curr);
                    return true;
                }
            } else {
                // Two children: relocate the successor's key into `curr`.
                let (result2, st2) = self.find(key, st.curr);
                // SAFETY: leaked-node regime.
                if result2 == FindResult::Abort
                    || unsafe { (*st.curr).op.load(Ordering::Acquire) } != st.curr_op
                {
                    continue;
                }
                // SAFETY: leaked-node regime.
                let replace_key = unsafe { (*st2.curr).key.load(Ordering::Acquire) };
                let reloc = alloc_relocate(st.curr, st.curr_op, key, replace_key);
                stats::record_cas();
                // SAFETY: leaked-node regime.
                let won = unsafe { &(*st2.curr).op }
                    .compare_exchange(
                        st2.curr_op,
                        flag(reloc, RELOCATE),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                if won && self.help_relocate(reloc, st2.pred, st2.pred_op, st2.curr) {
                    return true;
                }
            }
        }
    }

    fn help(&self, pred: *mut Node, pred_op: usize, curr: *mut Node, curr_op: usize) {
        match get_state(curr_op) {
            CHILDCAS => self.help_child_cas(unflag(curr_op), curr),
            RELOCATE => {
                self.help_relocate(unflag(curr_op), pred, pred_op, curr);
            }
            MARK => self.help_marked(pred, pred_op, curr),
            _ => {}
        }
    }

    fn help_child_cas(&self, op: usize, dest: *mut Node) {
        // SAFETY: `op` was packed with CHILDCAS, so it is a leaked
        // ChildCasOp; `dest` is a live node.
        unsafe {
            let o = &*(op as *const ChildCasOp);
            let field = if o.is_left {
                &(*dest).left
            } else {
                &(*dest).right
            };
            stats::record_cas();
            let _ =
                field.compare_exchange(o.expected, o.update, Ordering::AcqRel, Ordering::Acquire);
            stats::record_cas();
            let _ = (*dest).op.compare_exchange(
                flag(op, CHILDCAS),
                flag(op, NONE),
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
    }

    /// The relocation protocol (HJ Figure 6). `curr` is the node whose
    /// op word carries the RELOCATE flag (the successor being emptied).
    fn help_relocate(
        &self,
        op: usize,
        pred: *mut Node,
        mut pred_op: usize,
        curr: *mut Node,
    ) -> bool {
        // SAFETY: `op` is a leaked RelocateOp; nodes are leaked.
        unsafe {
            let o = &*(op as *const RelocateOp);
            let mut seen_state = o.state.load(Ordering::Acquire);
            if seen_state == ONGOING {
                // Try to own the destination's op word.
                stats::record_cas();
                let seen_op = match (*o.dest).op.compare_exchange(
                    o.dest_op,
                    flag(op, RELOCATE),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(old) => old,
                    Err(old) => old,
                };
                if seen_op == o.dest_op || seen_op == flag(op, RELOCATE) {
                    stats::record_cas();
                    let _ = o.state.compare_exchange(
                        ONGOING,
                        SUCCESSFUL,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    seen_state = SUCCESSFUL;
                } else {
                    stats::record_cas();
                    seen_state = match o.state.compare_exchange(
                        ONGOING,
                        FAILED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => FAILED,
                        Err(s) => s,
                    };
                }
            }
            if seen_state == SUCCESSFUL {
                // Swap the key into the destination and release it.
                stats::record_cas();
                let _ = (*o.dest).key.compare_exchange(
                    o.remove_key,
                    o.replace_key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                stats::record_cas();
                let _ = (*o.dest).op.compare_exchange(
                    flag(op, RELOCATE),
                    flag(op, NONE),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            let result = seen_state == SUCCESSFUL;
            if o.dest == curr {
                return result;
            }
            // Release (or mark for removal) the successor node.
            stats::record_cas();
            let _ = (*curr).op.compare_exchange(
                flag(op, RELOCATE),
                flag(op, if result { MARK } else { NONE }),
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            if result {
                if o.dest == pred {
                    pred_op = flag(op, NONE);
                }
                self.help_marked(pred, pred_op, curr);
            }
            result
        }
    }

    /// Physically splices a marked node out through its parent.
    fn help_marked(&self, pred: *mut Node, pred_op: usize, curr: *mut Node) {
        // SAFETY: leaked-node regime.
        unsafe {
            let left = (*curr).left.load(Ordering::Acquire);
            let right = (*curr).right.load(Ordering::Acquire);
            let new_ref = if is_null(left) {
                if is_null(right) {
                    // No children: install a null-flagged pointer that
                    // still remembers `curr`, so stale CASes fail.
                    set_null(curr as usize)
                } else {
                    right
                }
            } else {
                left
            };
            let is_left = (*pred).left.load(Ordering::Acquire) == curr as usize;
            let cas_op = alloc_child_cas(is_left, curr as usize, new_ref);
            stats::record_cas();
            if (*pred)
                .op
                .compare_exchange(
                    pred_op,
                    flag(cas_op, CHILDCAS),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.help_child_cas(cas_op, pred);
            }
        }
    }

    /// Visits keys in ascending order (weakly consistent; exact at
    /// quiescence). Marked (logically deleted) nodes are skipped.
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        // In-order DFS; (node, children_done) frames.
        let mut stack: Vec<(usize, bool)> = Vec::new();
        // SAFETY: leaked-node regime.
        unsafe {
            let first = (*self.root).right.load(Ordering::Acquire);
            if !is_null(first) {
                stack.push((first, false));
            }
            while let Some((n, expanded)) = stack.pop() {
                let node = n as *mut Node;
                if expanded {
                    if get_state((*node).op.load(Ordering::Acquire)) != MARK {
                        f((*node).key.load(Ordering::Acquire));
                    }
                    let right = (*node).right.load(Ordering::Acquire);
                    if !is_null(right) {
                        stack.push((right, false));
                    }
                } else {
                    stack.push((n, true));
                    let left = (*node).left.load(Ordering::Acquire);
                    if !is_null(left) {
                        stack.push((left, false));
                    }
                }
            }
        }
    }

    /// Number of keys via weakly consistent traversal.
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.for_each(|_| n += 1);
        n
    }

    /// Validates BST ordering at quiescence (exclusive access); returns
    /// the number of live (unmarked) keys.
    pub fn check_invariants(&mut self) -> Result<usize, String> {
        let mut live = 0;
        let mut stack: Vec<(usize, u64, u64)> = Vec::new();
        // SAFETY: exclusive access; leaked-node regime.
        unsafe {
            let first = (*self.root).right.load(Ordering::Relaxed);
            if !is_null(first) {
                stack.push((first, 1, u64::MAX));
            }
            while let Some((n, low, high)) = stack.pop() {
                let node = n as *mut Node;
                let k = (*node).key.load(Ordering::Relaxed);
                if !(low..=high).contains(&k) {
                    return Err(format!("key {k} outside ({low}, {high})"));
                }
                let state = get_state((*node).op.load(Ordering::Relaxed));
                if state == CHILDCAS || state == RELOCATE {
                    return Err(format!("unresolved operation on node {k} at quiescence"));
                }
                if state != MARK {
                    live += 1;
                }
                let left = (*node).left.load(Ordering::Relaxed);
                let right = (*node).right.load(Ordering::Relaxed);
                if !is_null(left) {
                    if k == 0 {
                        return Err("left child under key 0".into());
                    }
                    stack.push((left, low, k - 1));
                }
                if !is_null(right) {
                    stack.push((right, k + 1, high));
                }
            }
        }
        Ok(live)
    }
}

impl Default for HjTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for HjTree {
    fn drop(&mut self) {
        // Frees the reachable tree only; unlinked nodes and operation
        // records are leaked (paper regime).
        let mut stack = vec![self.root as usize];
        while let Some(n) = stack.pop() {
            if is_null(n) && n != self.root as usize {
                continue;
            }
            // SAFETY: exclusive access; reachable nodes are live boxes.
            let node = unsafe { Box::from_raw(n as *mut Node) };
            let l = node.left.load(Ordering::Relaxed);
            let r = node.right.load(Ordering::Relaxed);
            if !is_null(l) {
                stack.push(l);
            }
            if !is_null(r) {
                stack.push(r);
            }
        }
    }
}

impl std::fmt::Debug for HjTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HjTree").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let t = HjTree::new();
        assert!(!t.contains(&1));
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn insert_contains_remove() {
        let mut t = HjTree::new();
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert!(t.insert(k));
        }
        assert!(!t.insert(25));
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert!(t.contains(&k));
        }
        // Leaf removal.
        assert!(t.remove(&10));
        assert!(!t.contains(&10));
        // One-child removal.
        assert!(t.remove(&25));
        assert!(!t.contains(&25));
        assert!(t.contains(&30));
        // Two-children removal (relocation).
        assert!(t.remove(&50));
        assert!(!t.contains(&50));
        for k in [75u64, 30, 60, 90] {
            assert!(t.contains(&k), "lost {k}");
        }
        assert_eq!(t.check_invariants().unwrap(), 4);
    }

    #[test]
    fn remove_root_key_repeatedly() {
        let mut t = HjTree::new();
        for k in 1..=31u64 {
            t.insert(k);
        }
        // Remove in an order that forces many relocations.
        for k in [16u64, 8, 24, 4, 12, 20, 28, 2, 6] {
            assert!(t.remove(&k), "remove {k}");
            assert!(!t.contains(&k));
        }
        assert_eq!(t.check_invariants().unwrap(), 31 - 9);
    }

    #[test]
    fn ordered_traversal() {
        let t = HjTree::new();
        for k in [9u64, 3, 7, 1, 5] {
            t.insert(k);
        }
        let mut seen = Vec::new();
        t.for_each(|k| seen.push(k));
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn sequential_model_check() {
        let mut model = std::collections::BTreeSet::new();
        let mut t = HjTree::new();
        let mut x = 0x2545F4914F6CDD1Du64;
        for _ in 0..6000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 128 + 1;
            match x % 3 {
                0 => assert_eq!(t.insert(k), model.insert(k), "insert {k}"),
                1 => assert_eq!(t.remove(&k), model.remove(&k), "remove {k}"),
                _ => assert_eq!(t.contains(&k), model.contains(&k), "contains {k}"),
            }
        }
        assert_eq!(t.check_invariants().unwrap(), model.len());
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::{AtomicUsize, Ordering as O};
        const THREADS: usize = 8;
        const OPS: usize = 6_000;
        const SPACE: u64 = 64;
        let mut t = HjTree::new();
        let ins: Vec<AtomicUsize> = (0..SPACE).map(|_| AtomicUsize::new(0)).collect();
        let del: Vec<AtomicUsize> = (0..SPACE).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            let t = &t;
            let ins = &ins;
            let del = &del;
            for tid in 0..THREADS {
                s.spawn(move || {
                    let mut x = 0x9E3779B97F4A7C15u64 ^ (tid as u64) << 17;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % SPACE + 1;
                        if x & 2 == 0 {
                            if t.insert(k) {
                                ins[(k - 1) as usize].fetch_add(1, O::Relaxed);
                            }
                        } else if t.remove(&k) {
                            del[(k - 1) as usize].fetch_add(1, O::Relaxed);
                        }
                    }
                });
            }
        });
        let live = t.check_invariants().unwrap();
        let mut expected = 0;
        for k in 1..=SPACE {
            let i = ins[(k - 1) as usize].load(O::Relaxed);
            let d = del[(k - 1) as usize].load(O::Relaxed);
            assert!(i == d || i == d + 1, "key {k}: {i} ins vs {d} del");
            let present = i == d + 1;
            assert_eq!(t.contains(&k), present, "membership of {k}");
            expected += usize::from(present);
        }
        assert_eq!(live, expected);
    }
}
