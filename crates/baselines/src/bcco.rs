//! BCCO-BST: Bronson, Casper, Chafi & Olukotun, *A Practical Concurrent
//! Binary Search Tree* (PPoPP 2010).
//!
//! A lock-based, **partially external**, relaxed-balance AVL tree:
//!
//! * Reads descend optimistically, hand-over-hand, validating a per-node
//!   *version* word after each link read instead of taking locks.
//! * Deleting a key whose node has two children only clears its value
//!   (the node becomes a *routing* node); nodes with at most one child
//!   are physically unlinked under the locks of parent and node.
//! * Balancing is relaxed: writers leave the tree within one rotation of
//!   AVL shape and a bottom-up `fix_height_and_rebalance` pass repairs
//!   heights and applies rotations under local locks only.
//!
//! ## Simplification vs. the original
//!
//! Bronson et al. split version changes into *growing* (ignorable by
//! readers) and *shrinking* (must invalidate). We use a single
//! `CHANGING` bit plus a change counter for both, which is strictly more
//! conservative: readers retry in a few cases where the original could
//! continue. This preserves the algorithm's structure and correctness
//! and costs a little read-side throughput — noted in EXPERIMENTS.md.
//!
//! Keys are `u64`. Nodes are freed on `Drop` (everything stays reachable
//! because unlinked nodes are leaked, per the paper-evaluation regime).

use nmbst_sync::{Backoff, RawSpinLock};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicPtr, AtomicU64, Ordering};

const UNLINKED: u64 = 1;
const CHANGING: u64 = 2;
const VERSION_STEP: u64 = 4;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dir {
    Left,
    Right,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    /// Optimistic validation failed somewhere above; restart from root.
    Retry,
    /// Operation completed; the set changed.
    Changed,
    /// Operation completed; the set was already in the desired state.
    Unchanged,
}

struct Node {
    key: u64,
    /// `true` = member; `false` = routing node (logically absent).
    present: AtomicBool,
    height: AtomicI32,
    version: AtomicU64,
    parent: AtomicPtr<Node>,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
    lock: RawSpinLock,
}

impl Node {
    fn alloc(key: u64, present: bool, parent: *mut Node) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            present: AtomicBool::new(present),
            height: AtomicI32::new(1),
            version: AtomicU64::new(0),
            parent: AtomicPtr::new(parent),
            left: AtomicPtr::new(ptr::null_mut()),
            right: AtomicPtr::new(ptr::null_mut()),
            lock: RawSpinLock::new(),
        }))
    }

    #[inline]
    fn child(&self, dir: Dir) -> &AtomicPtr<Node> {
        match dir {
            Dir::Left => &self.left,
            Dir::Right => &self.right,
        }
    }

    /// Marks the start of a structural change that shrinks this node's
    /// subtree. Must hold the node's lock.
    #[inline]
    fn begin_change(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & (CHANGING | UNLINKED), 0);
        self.version.store(v | CHANGING, Ordering::Release);
    }

    /// Ends the change, invalidating every optimistic reader that passed
    /// through during it.
    #[inline]
    fn end_change(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & CHANGING, CHANGING);
        self.version
            .store((v & !CHANGING) + VERSION_STEP, Ordering::Release);
    }

    #[inline]
    fn is_unlinked(&self) -> bool {
        self.version.load(Ordering::Acquire) & UNLINKED != 0
    }
}

#[inline]
fn height_of(node: *mut Node) -> i32 {
    if node.is_null() {
        0
    } else {
        // SAFETY: nodes live until tree drop (unlinked ones leak).
        unsafe { (*node).height.load(Ordering::Relaxed) }
    }
}

#[inline]
fn dir_of(key: u64, node_key: u64) -> Dir {
    if key < node_key {
        Dir::Left
    } else {
        Dir::Right
    }
}

/// Bronson et al.'s optimistic lock-based AVL over `u64` keys.
///
/// # Examples
///
/// ```
/// use nmbst_baselines::bcco::BccoTree;
///
/// let t = BccoTree::new();
/// assert!(t.insert(5));
/// assert!(t.contains(&5));
/// assert!(t.remove(&5));
/// assert!(!t.contains(&5));
/// ```
pub struct BccoTree {
    /// Sentinel above the root: never rotated, never unlinked, version
    /// permanently 0. The real root is `holder.right`.
    holder: *mut Node,
}

// SAFETY: shared mutation follows the lock + version protocol.
unsafe impl Send for BccoTree {}
unsafe impl Sync for BccoTree {}

impl BccoTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BccoTree {
            holder: Node::alloc(0, false, ptr::null_mut()),
        }
    }

    fn wait_until_not_changing(node: *mut Node) {
        let backoff = Backoff::new();
        // SAFETY: leaked-node regime.
        while unsafe { (*node).version.load(Ordering::Acquire) } & CHANGING != 0 {
            backoff.snooze();
        }
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &u64) -> bool {
        loop {
            match self.attempt_get(*key, self.holder, Dir::Right, 0) {
                Outcome::Retry => continue,
                Outcome::Changed => return true,
                Outcome::Unchanged => return false,
            }
        }
    }

    /// Hand-over-hand optimistic descent (the paper's `attemptGet`).
    /// `Changed` = found & present; `Unchanged` = absent.
    fn attempt_get(&self, key: u64, node: *mut Node, dir: Dir, node_ovl: u64) -> Outcome {
        // SAFETY throughout: leaked-node regime — any pointer read from a
        // live link stays dereferenceable for the tree's lifetime.
        unsafe {
            loop {
                let child = (*node).child(dir).load(Ordering::Acquire);
                if (*node).version.load(Ordering::Acquire) != node_ovl {
                    return Outcome::Retry;
                }
                if child.is_null() {
                    return Outcome::Unchanged;
                }
                let child_key = (*child).key;
                if child_key == key {
                    // Keys never move in BCCO; the value read linearizes
                    // on its own.
                    return if (*child).present.load(Ordering::Acquire) {
                        Outcome::Changed
                    } else {
                        Outcome::Unchanged
                    };
                }
                let child_ovl = (*child).version.load(Ordering::Acquire);
                if child_ovl & CHANGING != 0 {
                    Self::wait_until_not_changing(child);
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue;
                }
                if child_ovl & UNLINKED != 0 {
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue; // re-read the (changed) child link
                }
                if child != (*node).child(dir).load(Ordering::Acquire) {
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue;
                }
                if (*node).version.load(Ordering::Acquire) != node_ovl {
                    return Outcome::Retry;
                }
                match self.attempt_get(key, child, dir_of(key, child_key), child_ovl) {
                    Outcome::Retry => continue,
                    done => return done,
                }
            }
        }
    }

    /// Adds `key`; `true` iff it was absent.
    pub fn insert(&self, key: u64) -> bool {
        loop {
            match self.attempt_put(key, self.holder, Dir::Right, 0) {
                Outcome::Retry => continue,
                o => return o == Outcome::Changed,
            }
        }
    }

    fn attempt_put(&self, key: u64, node: *mut Node, dir: Dir, node_ovl: u64) -> Outcome {
        // SAFETY throughout: leaked-node regime; locks serialize writers.
        unsafe {
            loop {
                let child = (*node).child(dir).load(Ordering::Acquire);
                if (*node).version.load(Ordering::Acquire) != node_ovl {
                    return Outcome::Retry;
                }
                if child.is_null() {
                    // Try to attach a new leaf here under the lock.
                    crate::stats::record_lock();
                    (*node).lock.lock();
                    if (*node).version.load(Ordering::Relaxed) != node_ovl {
                        (*node).lock.unlock();
                        return Outcome::Retry;
                    }
                    if (*node).child(dir).load(Ordering::Relaxed).is_null() {
                        let fresh = Node::alloc(key, true, node);
                        (*node).child(dir).store(fresh, Ordering::Release);
                        (*node).lock.unlock();
                        self.fix_height_and_rebalance(node);
                        return Outcome::Changed;
                    }
                    // A child appeared; descend into it next iteration.
                    (*node).lock.unlock();
                    continue;
                }
                let child_key = (*child).key;
                if child_key == key {
                    // Found the key's node: resurrect if routing.
                    crate::stats::record_lock();
                    (*child).lock.lock();
                    if (*child).is_unlinked() {
                        (*child).lock.unlock();
                        return Outcome::Retry;
                    }
                    let was = (*child).present.load(Ordering::Relaxed);
                    (*child).present.store(true, Ordering::Release);
                    (*child).lock.unlock();
                    return if was {
                        Outcome::Unchanged
                    } else {
                        Outcome::Changed
                    };
                }
                let child_ovl = (*child).version.load(Ordering::Acquire);
                if child_ovl & CHANGING != 0 {
                    Self::wait_until_not_changing(child);
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue;
                }
                if child_ovl & UNLINKED != 0 {
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue;
                }
                if child != (*node).child(dir).load(Ordering::Acquire) {
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue;
                }
                if (*node).version.load(Ordering::Acquire) != node_ovl {
                    return Outcome::Retry;
                }
                match self.attempt_put(key, child, dir_of(key, child_key), child_ovl) {
                    Outcome::Retry => continue,
                    done => return done,
                }
            }
        }
    }

    /// Removes `key`; `true` iff it was present.
    pub fn remove(&self, key: &u64) -> bool {
        loop {
            match self.attempt_remove(*key, self.holder, Dir::Right, 0) {
                Outcome::Retry => continue,
                o => return o == Outcome::Changed,
            }
        }
    }

    fn attempt_remove(&self, key: u64, node: *mut Node, dir: Dir, node_ovl: u64) -> Outcome {
        // SAFETY throughout: leaked-node regime.
        unsafe {
            loop {
                let child = (*node).child(dir).load(Ordering::Acquire);
                if (*node).version.load(Ordering::Acquire) != node_ovl {
                    return Outcome::Retry;
                }
                if child.is_null() {
                    return Outcome::Unchanged; // absent
                }
                let child_key = (*child).key;
                if child_key == key {
                    match self.attempt_rm_node(node, child) {
                        Outcome::Retry => {
                            if (*node).version.load(Ordering::Acquire) != node_ovl {
                                return Outcome::Retry;
                            }
                            continue;
                        }
                        done => return done,
                    }
                }
                let child_ovl = (*child).version.load(Ordering::Acquire);
                if child_ovl & CHANGING != 0 {
                    Self::wait_until_not_changing(child);
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue;
                }
                if child_ovl & UNLINKED != 0 {
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue;
                }
                if child != (*node).child(dir).load(Ordering::Acquire) {
                    if (*node).version.load(Ordering::Acquire) != node_ovl {
                        return Outcome::Retry;
                    }
                    continue;
                }
                if (*node).version.load(Ordering::Acquire) != node_ovl {
                    return Outcome::Retry;
                }
                match self.attempt_remove(key, child, dir_of(key, child_key), child_ovl) {
                    Outcome::Retry => continue,
                    done => return done,
                }
            }
        }
    }

    /// Removes node `n` (key match) under `parent`: logical delete if it
    /// has two children (partially external), physical unlink otherwise.
    fn attempt_rm_node(&self, parent: *mut Node, n: *mut Node) -> Outcome {
        // SAFETY throughout: leaked-node regime; locks serialize writers.
        unsafe {
            if !(*n).left.load(Ordering::Acquire).is_null()
                && !(*n).right.load(Ordering::Acquire).is_null()
            {
                // Two children: just clear the value (node turns routing).
                crate::stats::record_lock();
                (*n).lock.lock();
                if (*n).is_unlinked() {
                    (*n).lock.unlock();
                    return Outcome::Retry;
                }
                let was = (*n).present.load(Ordering::Relaxed);
                (*n).present.store(false, Ordering::Release);
                (*n).lock.unlock();
                return if was {
                    Outcome::Changed
                } else {
                    Outcome::Unchanged
                };
            }
            // ≤ 1 child: unlink under parent + node locks.
            crate::stats::record_lock();
            (*parent).lock.lock();
            if (*parent).is_unlinked() || (*n).parent.load(Ordering::Acquire) != parent {
                (*parent).lock.unlock();
                return Outcome::Retry;
            }
            crate::stats::record_lock();
            (*n).lock.lock();
            let was = (*n).present.load(Ordering::Relaxed);
            if !was {
                (*n).lock.unlock();
                (*parent).lock.unlock();
                return Outcome::Unchanged;
            }
            let left = (*n).left.load(Ordering::Relaxed);
            let right = (*n).right.load(Ordering::Relaxed);
            if left.is_null() || right.is_null() {
                // Still unlinkable: splice out.
                Self::unlink_locked(parent, n);
                (*n).lock.unlock();
                (*parent).lock.unlock();
                self.fix_height_and_rebalance(parent);
            } else {
                // Gained a second child meanwhile: logical delete.
                (*n).present.store(false, Ordering::Release);
                (*n).lock.unlock();
                (*parent).lock.unlock();
            }
            Outcome::Changed
        }
    }

    /// Splices `n` (≤ 1 child) out from under `parent`. Both locked.
    unsafe fn unlink_locked(parent: *mut Node, n: *mut Node) {
        // SAFETY: caller holds both locks; `n.parent == parent` verified.
        unsafe {
            let left = (*n).left.load(Ordering::Relaxed);
            let right = (*n).right.load(Ordering::Relaxed);
            let splice = if left.is_null() { right } else { left };
            (*n).begin_change();
            if (*parent).left.load(Ordering::Relaxed) == n {
                (*parent).left.store(splice, Ordering::Release);
            } else {
                debug_assert_eq!((*parent).right.load(Ordering::Relaxed), n);
                (*parent).right.store(splice, Ordering::Release);
            }
            if !splice.is_null() {
                (*splice).parent.store(parent, Ordering::Release);
            }
            // UNLINKED supersedes the CHANGING window.
            (*n).version.store(UNLINKED, Ordering::Release);
            (*n).present.store(false, Ordering::Release);
        }
    }

    // --- relaxed AVL repair ------------------------------------------

    /// Walks up from `node`, repairing heights, unlinking empty routing
    /// nodes, and rotating out-of-balance nodes, with local locks only.
    fn fix_height_and_rebalance(&self, mut node: *mut Node) {
        // SAFETY throughout: leaked-node regime.
        unsafe {
            let budget = Backoff::new();
            while !node.is_null() && node != self.holder {
                if (*node).is_unlinked() {
                    return;
                }
                let left = (*node).left.load(Ordering::Acquire);
                let right = (*node).right.load(Ordering::Acquire);
                let h_l = height_of(left);
                let h_r = height_of(right);
                let routing_unlinkable =
                    !(*node).present.load(Ordering::Acquire) && (left.is_null() || right.is_null());
                let imbalanced = (h_l - h_r).abs() > 1;
                let wanted = 1 + h_l.max(h_r);
                let height_stale = wanted != (*node).height.load(Ordering::Relaxed);

                if routing_unlinkable || imbalanced {
                    // Needs parent participation.
                    let parent = (*node).parent.load(Ordering::Acquire);
                    if parent.is_null() {
                        return;
                    }
                    crate::stats::record_lock();
                    (*parent).lock.lock();
                    if (*parent).is_unlinked() || (*node).parent.load(Ordering::Acquire) != parent {
                        (*parent).lock.unlock();
                        budget.snooze();
                        continue; // stale parent; retry
                    }
                    crate::stats::record_lock();
                    (*node).lock.lock();
                    let next = self.rebalance_locked(parent, node);
                    (*node).lock.unlock();
                    (*parent).lock.unlock();
                    node = next;
                } else if height_stale {
                    crate::stats::record_lock();
                    (*node).lock.lock();
                    let l = height_of((*node).left.load(Ordering::Relaxed));
                    let r = height_of((*node).right.load(Ordering::Relaxed));
                    let w = 1 + l.max(r);
                    let changed = w != (*node).height.load(Ordering::Relaxed);
                    if changed {
                        (*node).height.store(w, Ordering::Release);
                    }
                    let parent = (*node).parent.load(Ordering::Relaxed);
                    (*node).lock.unlock();
                    if !changed {
                        return;
                    }
                    node = parent;
                } else {
                    return; // nothing required
                }
            }
        }
    }

    /// With `parent` and `node` locked: unlink an empty routing node or
    /// perform one rotation step. Returns the next node to repair.
    unsafe fn rebalance_locked(&self, parent: *mut Node, node: *mut Node) -> *mut Node {
        // SAFETY: caller holds both locks.
        unsafe {
            if (*node).is_unlinked() {
                return parent;
            }
            let left = (*node).left.load(Ordering::Relaxed);
            let right = (*node).right.load(Ordering::Relaxed);
            if !(*node).present.load(Ordering::Relaxed) && (left.is_null() || right.is_null()) {
                Self::unlink_locked(parent, node);
                return parent;
            }
            let h_l = height_of(left);
            let h_r = height_of(right);
            if h_l - h_r > 1 {
                self.rotate_toward_right(parent, node, left)
            } else if h_r - h_l > 1 {
                self.rotate_toward_left(parent, node, right)
            } else {
                let w = 1 + h_l.max(h_r);
                if w != (*node).height.load(Ordering::Relaxed) {
                    (*node).height.store(w, Ordering::Release);
                    parent
                } else {
                    ptr::null_mut()
                }
            }
        }
    }

    /// Right-rotation step for a left-heavy `node` (locked, with locked
    /// `parent`); locks `n_l` (and `n_l_r` for the double case).
    unsafe fn rotate_toward_right(
        &self,
        parent: *mut Node,
        node: *mut Node,
        n_l: *mut Node,
    ) -> *mut Node {
        // SAFETY: caller holds parent+node locks; n_l non-null because
        // the left height is ≥ 2.
        unsafe {
            crate::stats::record_lock();
            (*n_l).lock.lock();
            let h_r = height_of((*node).right.load(Ordering::Relaxed));
            let h_l = (*n_l).height.load(Ordering::Relaxed);
            if h_l - h_r <= 1 {
                (*n_l).lock.unlock();
                return node; // situation changed; re-examine
            }
            let n_l_l = (*n_l).left.load(Ordering::Relaxed);
            let n_l_r = (*n_l).right.load(Ordering::Relaxed);
            if height_of(n_l_l) >= height_of(n_l_r) {
                Self::rotate_right_locked(parent, node, n_l);
                let next = Self::post_rotation_fixup(parent, node, n_l);
                (*n_l).lock.unlock();
                next
            } else {
                // Left-right shape: first rotate `n_l` leftward (with
                // `node` acting as its parent), then let the outer loop
                // redo the right rotation.
                crate::stats::record_lock();
                (*n_l_r).lock.lock();
                Self::rotate_left_locked(node, n_l, n_l_r);
                (*n_l_r).lock.unlock();
                (*n_l).lock.unlock();
                node
            }
        }
    }

    /// Mirror image of [`rotate_toward_right`].
    unsafe fn rotate_toward_left(
        &self,
        parent: *mut Node,
        node: *mut Node,
        n_r: *mut Node,
    ) -> *mut Node {
        // SAFETY: see rotate_toward_right.
        unsafe {
            crate::stats::record_lock();
            (*n_r).lock.lock();
            let h_l = height_of((*node).left.load(Ordering::Relaxed));
            let h_r = (*n_r).height.load(Ordering::Relaxed);
            if h_r - h_l <= 1 {
                (*n_r).lock.unlock();
                return node;
            }
            let n_r_r = (*n_r).right.load(Ordering::Relaxed);
            let n_r_l = (*n_r).left.load(Ordering::Relaxed);
            if height_of(n_r_r) >= height_of(n_r_l) {
                Self::rotate_left_locked(parent, node, n_r);
                let next = Self::post_rotation_fixup(parent, node, n_r);
                (*n_r).lock.unlock();
                next
            } else {
                crate::stats::record_lock();
                (*n_r_l).lock.lock();
                Self::rotate_right_locked(node, n_r, n_r_l);
                (*n_r_l).lock.unlock();
                (*n_r).lock.unlock();
                node
            }
        }
    }

    /// After a rotation that hoisted `pivot` above `node` under
    /// `parent`: decide where repair continues. The rotated pair's
    /// heights were recomputed inside the rotation, but either may still
    /// be imbalanced (relaxed balance), and `parent`'s height is now
    /// possibly stale — so re-examine in that order.
    ///
    /// # Safety
    ///
    /// All three nodes are locked by the caller.
    unsafe fn post_rotation_fixup(
        parent: *mut Node,
        node: *mut Node,
        pivot: *mut Node,
    ) -> *mut Node {
        // SAFETY: caller holds the locks; heights are fresh.
        unsafe {
            let bal = |n: *mut Node| {
                height_of((*n).left.load(Ordering::Relaxed))
                    - height_of((*n).right.load(Ordering::Relaxed))
            };
            if bal(node).abs() > 1 {
                node
            } else if bal(pivot).abs() > 1 {
                pivot
            } else {
                parent
            }
        }
    }

    /// Classic right rotation; `parent`, `node`, `n_l` locked. `node`
    /// shrinks, so it gets the CHANGING window.
    unsafe fn rotate_right_locked(parent: *mut Node, node: *mut Node, n_l: *mut Node) {
        // SAFETY: caller holds all three locks.
        unsafe {
            (*node).begin_change();
            let n_l_r = (*n_l).right.load(Ordering::Relaxed);
            (*node).left.store(n_l_r, Ordering::Release);
            if !n_l_r.is_null() {
                (*n_l_r).parent.store(node, Ordering::Release);
            }
            (*n_l).right.store(node, Ordering::Release);
            (*node).parent.store(n_l, Ordering::Release);
            if (*parent).left.load(Ordering::Relaxed) == node {
                (*parent).left.store(n_l, Ordering::Release);
            } else {
                debug_assert_eq!((*parent).right.load(Ordering::Relaxed), node);
                (*parent).right.store(n_l, Ordering::Release);
            }
            (*n_l).parent.store(parent, Ordering::Release);
            let h_node = 1 + height_of((*node).left.load(Ordering::Relaxed))
                .max(height_of((*node).right.load(Ordering::Relaxed)));
            (*node).height.store(h_node, Ordering::Release);
            let h_nl = 1 + height_of((*n_l).left.load(Ordering::Relaxed)).max(h_node);
            (*n_l).height.store(h_nl, Ordering::Release);
            (*node).end_change();
        }
    }

    /// Classic left rotation; `parent`, `node`, `n_r` locked.
    unsafe fn rotate_left_locked(parent: *mut Node, node: *mut Node, n_r: *mut Node) {
        // SAFETY: caller holds all three locks.
        unsafe {
            (*node).begin_change();
            let n_r_l = (*n_r).left.load(Ordering::Relaxed);
            (*node).right.store(n_r_l, Ordering::Release);
            if !n_r_l.is_null() {
                (*n_r_l).parent.store(node, Ordering::Release);
            }
            (*n_r).left.store(node, Ordering::Release);
            (*node).parent.store(n_r, Ordering::Release);
            if (*parent).left.load(Ordering::Relaxed) == node {
                (*parent).left.store(n_r, Ordering::Release);
            } else {
                debug_assert_eq!((*parent).right.load(Ordering::Relaxed), node);
                (*parent).right.store(n_r, Ordering::Release);
            }
            (*n_r).parent.store(parent, Ordering::Release);
            let h_node = 1 + height_of((*node).left.load(Ordering::Relaxed))
                .max(height_of((*node).right.load(Ordering::Relaxed)));
            (*node).height.store(h_node, Ordering::Release);
            let h_nr = 1 + height_of((*n_r).right.load(Ordering::Relaxed)).max(h_node);
            (*n_r).height.store(h_nr, Ordering::Release);
            (*node).end_change();
        }
    }

    // --- inspection ---------------------------------------------------

    /// Visits present keys in ascending order (weakly consistent; exact
    /// at quiescence).
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        // SAFETY: leaked-node regime.
        unsafe {
            let mut stack: Vec<(*mut Node, bool)> = Vec::new();
            let root = (*self.holder).right.load(Ordering::Acquire);
            if !root.is_null() {
                stack.push((root, false));
            }
            while let Some((n, expanded)) = stack.pop() {
                if expanded {
                    if (*n).present.load(Ordering::Acquire) {
                        f((*n).key);
                    }
                    let r = (*n).right.load(Ordering::Acquire);
                    if !r.is_null() {
                        stack.push((r, false));
                    }
                } else {
                    stack.push((n, true));
                    let l = (*n).left.load(Ordering::Acquire);
                    if !l.is_null() {
                        stack.push((l, false));
                    }
                }
            }
        }
    }

    /// Number of present keys (weakly consistent traversal).
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.for_each(|_| n += 1);
        n
    }

    /// Validates BST order, parent links, and the relaxed height bound
    /// at quiescence (exclusive access). Returns the number of present
    /// keys.
    pub fn check_invariants(&mut self) -> Result<usize, String> {
        // SAFETY: exclusive access.
        unsafe {
            let mut present = 0;
            let root = (*self.holder).right.load(Ordering::Relaxed);
            let mut stack: Vec<(*mut Node, u64, u64, *mut Node)> = Vec::new();
            if !root.is_null() {
                stack.push((root, 0, u64::MAX, self.holder));
            }
            while let Some((n, low, high, parent)) = stack.pop() {
                let k = (*n).key;
                if !(low..=high).contains(&k) {
                    return Err(format!("key {k} outside ({low}, {high})"));
                }
                if (*n).parent.load(Ordering::Relaxed) != parent {
                    return Err(format!("stale parent pointer at key {k}"));
                }
                if (*n).is_unlinked() {
                    return Err(format!("unlinked node {k} still reachable"));
                }
                if (*n).version.load(Ordering::Relaxed) & CHANGING != 0 {
                    return Err(format!("node {k} mid-change at quiescence"));
                }
                if (*n).present.load(Ordering::Relaxed) {
                    present += 1;
                }
                let l = (*n).left.load(Ordering::Relaxed);
                let r = (*n).right.load(Ordering::Relaxed);
                let h = (*n).height.load(Ordering::Relaxed);
                if h != 1 + height_of(l).max(height_of(r)) {
                    // Relaxed balance: heights may be stale but only while
                    // a repair pass is pending; at test quiescence every
                    // writer finished its repair pass, so flag it.
                    return Err(format!("stale height at key {k}"));
                }
                if !l.is_null() {
                    if k == 0 {
                        return Err("left child under key 0".into());
                    }
                    stack.push((l, low, k - 1, n));
                }
                if !r.is_null() {
                    stack.push((r, k + 1, high, n));
                }
            }
            Ok(present)
        }
    }
}

impl Default for BccoTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for BccoTree {
    fn drop(&mut self) {
        // Reachable nodes only; unlinked nodes leak (paper regime).
        let mut stack = vec![self.holder];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: exclusive access; reachable nodes are live boxes.
            let node = unsafe { Box::from_raw(n) };
            stack.push(node.left.load(Ordering::Relaxed));
            stack.push(node.right.load(Ordering::Relaxed));
        }
    }
}

impl std::fmt::Debug for BccoTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BccoTree").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let t = BccoTree::new();
        assert!(!t.contains(&5));
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut t = BccoTree::new();
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert!(t.insert(k));
        }
        assert!(!t.insert(50));
        // Two-children delete → routing node.
        assert!(t.remove(&50));
        assert!(!t.contains(&50));
        // Resurrection through a routing node.
        assert!(t.insert(50));
        assert!(t.contains(&50));
        assert!(t.remove(&50));
        // Leaf deletes.
        assert!(t.remove(&10));
        assert!(t.remove(&30));
        assert!(!t.contains(&10));
        let live = t.check_invariants().unwrap();
        assert_eq!(live, 4);
    }

    #[test]
    fn rebalances_sorted_inserts() {
        let mut t = BccoTree::new();
        const N: u64 = 4096;
        for k in 1..=N {
            assert!(t.insert(k));
        }
        t.check_invariants().unwrap();
        // AVL-ish: height must be O(log n), far below the degenerate N.
        // SAFETY: exclusive access.
        let root_height = unsafe {
            let root = (*t.holder).right.load(Ordering::Relaxed);
            (*root).height.load(Ordering::Relaxed)
        };
        assert!(
            root_height <= 2 * (64 - (N.leading_zeros() as i32)),
            "height {root_height} not logarithmic"
        );
    }

    /// Height of the reachable root; exclusive access.
    fn root_height(t: &BccoTree) -> i32 {
        // SAFETY: exclusive access in tests.
        unsafe {
            let root = (*t.holder).right.load(Ordering::Relaxed);
            if root.is_null() {
                0
            } else {
                (*root).height.load(Ordering::Relaxed)
            }
        }
    }

    #[test]
    fn single_rotations_restore_balance() {
        // Left-left shape (rotate right) and right-right (rotate left).
        for keys in [[30u64, 20, 10], [10, 20, 30]] {
            let mut t = BccoTree::new();
            for k in keys {
                assert!(t.insert(k));
            }
            t.check_invariants().unwrap();
            assert_eq!(root_height(&t), 2, "3 keys must form a perfect tree");
        }
    }

    #[test]
    fn double_rotations_restore_balance() {
        // Left-right shape and right-left shape force the two-step
        // (child-then-parent) rotation path.
        for keys in [[30u64, 10, 20], [10, 30, 20]] {
            let mut t = BccoTree::new();
            for k in keys {
                assert!(t.insert(k));
            }
            t.check_invariants().unwrap();
            assert_eq!(root_height(&t), 2, "double rotation must flatten {keys:?}");
        }
    }

    #[test]
    fn sequential_model_check() {
        let mut model = std::collections::BTreeSet::new();
        let mut t = BccoTree::new();
        let mut x = 0x853C49E6748FEA9Bu64;
        for _ in 0..6000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 128 + 1;
            match x % 3 {
                0 => assert_eq!(t.insert(k), model.insert(k), "insert {k}"),
                1 => assert_eq!(t.remove(&k), model.remove(&k), "remove {k}"),
                _ => assert_eq!(t.contains(&k), model.contains(&k), "contains {k}"),
            }
        }
        assert_eq!(t.check_invariants().unwrap(), model.len());
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::{AtomicUsize, Ordering as O};
        const THREADS: usize = 8;
        const OPS: usize = 6_000;
        const SPACE: u64 = 64;
        let mut t = BccoTree::new();
        let ins: Vec<AtomicUsize> = (0..SPACE).map(|_| AtomicUsize::new(0)).collect();
        let del: Vec<AtomicUsize> = (0..SPACE).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            let t = &t;
            let ins = &ins;
            let del = &del;
            for tid in 0..THREADS {
                s.spawn(move || {
                    let mut x = 0xD1B54A32D192ED03u64 ^ (tid as u64) << 23;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % SPACE + 1;
                        if x & 2 == 0 {
                            if t.insert(k) {
                                ins[(k - 1) as usize].fetch_add(1, O::Relaxed);
                            }
                        } else if t.remove(&k) {
                            del[(k - 1) as usize].fetch_add(1, O::Relaxed);
                        }
                    }
                });
            }
        });
        let live = t.check_invariants().unwrap();
        let mut expected = 0;
        for k in 1..=SPACE {
            let i = ins[(k - 1) as usize].load(O::Relaxed);
            let d = del[(k - 1) as usize].load(O::Relaxed);
            assert!(i == d || i == d + 1, "key {k}: {i} ins vs {d} del");
            let present = i == d + 1;
            assert_eq!(t.contains(&k), present, "membership of {k}");
            expected += usize::from(present);
        }
        assert_eq!(live, expected);
    }

    #[test]
    fn concurrent_inserts_stay_balanced() {
        let mut t = BccoTree::new();
        std::thread::scope(|s| {
            let t = &t;
            for tid in 0..4u64 {
                s.spawn(move || {
                    for i in 0..2000u64 {
                        t.insert(tid * 2000 + i + 1);
                    }
                });
            }
        });
        t.check_invariants().unwrap();
        assert_eq!(t.count(), 8000);
    }
}
