//! Per-thread cost counters for the baselines (Table 1).
//!
//! Mirrors `nmbst::stats`: thread-local `Cell`s, compiled to nothing
//! without `feature = "instrument"`.

use std::cell::Cell;

/// Counter snapshot for baseline operations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BaselineStats {
    /// CAS instructions executed.
    pub cas: u64,
    /// Shared objects allocated (nodes *and* operation records).
    pub allocs: u64,
    /// Lock acquisitions (BCCO only; the lock-free baselines take none).
    pub locks: u64,
}

impl BaselineStats {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &BaselineStats) -> BaselineStats {
        BaselineStats {
            cas: self.cas.saturating_sub(earlier.cas),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            locks: self.locks.saturating_sub(earlier.locks),
        }
    }
}

#[cfg(feature = "instrument")]
thread_local! {
    static STATS: Cell<BaselineStats> =
        const { Cell::new(BaselineStats { cas: 0, allocs: 0, locks: 0 }) };
}

/// Records one CAS.
#[inline]
pub fn record_cas() {
    #[cfg(feature = "instrument")]
    STATS.with(|s| {
        let mut v = s.get();
        v.cas += 1;
        s.set(v);
    });
}

/// Records one shared-object allocation.
#[inline]
pub fn record_alloc() {
    #[cfg(feature = "instrument")]
    STATS.with(|s| {
        let mut v = s.get();
        v.allocs += 1;
        s.set(v);
    });
}

/// Records one lock acquisition.
#[inline]
pub fn record_lock() {
    #[cfg(feature = "instrument")]
    STATS.with(|s| {
        let mut v = s.get();
        v.locks += 1;
        s.set(v);
    });
}

/// Current thread's counters (zeros without `instrument`).
#[inline]
pub fn snapshot() -> BaselineStats {
    #[cfg(feature = "instrument")]
    {
        STATS.with(|s| s.get())
    }
    #[cfg(not(feature = "instrument"))]
    {
        BaselineStats::default()
    }
}

/// Resets the current thread's counters.
#[inline]
pub fn reset() {
    #[cfg(feature = "instrument")]
    STATS.with(|s| s.set(BaselineStats::default()));
}

#[allow(dead_code)]
fn _keep_cell(_: Cell<u8>) {}

#[cfg(all(test, feature = "instrument"))]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_reset() {
        reset();
        record_cas();
        record_alloc();
        record_alloc();
        let s = snapshot();
        assert_eq!(s.cas, 1);
        assert_eq!(s.allocs, 2);
        reset();
        assert_eq!(snapshot(), BaselineStats::default());
    }
}
