//! The coarse-locked reference: `BTreeSet` behind one mutex.
//!
//! Not in the paper's evaluation, but the natural sanity baseline: any
//! concurrent tree must beat it as soon as there is parallelism, and at
//! one thread it bounds how much the lock-free machinery costs.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// A `BTreeSet<u64>` serialized by a single mutex.
///
/// # Examples
///
/// ```
/// use nmbst_baselines::locked::LockedBTreeSet;
///
/// let s = LockedBTreeSet::new();
/// assert!(s.insert(1));
/// assert!(s.contains(&1));
/// assert!(s.remove(&1));
/// ```
#[derive(Debug, Default)]
pub struct LockedBTreeSet {
    inner: Mutex<BTreeSet<u64>>,
}

impl LockedBTreeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `key`; `true` iff it was absent.
    pub fn insert(&self, key: u64) -> bool {
        self.inner.lock().unwrap().insert(key)
    }

    /// Removes `key`; `true` iff it was present.
    pub fn remove(&self, key: &u64) -> bool {
        self.inner.lock().unwrap().remove(key)
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &u64) -> bool {
        self.inner.lock().unwrap().contains(key)
    }

    /// Number of keys.
    pub fn count(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Visits keys in ascending order under the lock.
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        for &k in self.inner.lock().unwrap().iter() {
            f(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let s = LockedBTreeSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(&3));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let s = LockedBTreeSet::new();
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..1000 {
                        assert!(s.insert(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(s.count(), 4000);
    }
}
